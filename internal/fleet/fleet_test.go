package fleet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tspusim/internal/sim"
)

// fakeRun is a deterministic RunFunc: output and stats depend only on the
// job, never on scheduling.
func fakeRun(job Job) (string, []Stat, error) {
	r := sim.NewRand(job.Seed)
	v := r.Float64()
	out := fmt.Sprintf("exp=%s seed=%d shard=%d v=%.6f", job.Exp, job.SeedIndex, job.Shard, v)
	return out, []Stat{{Key: "v", Value: v}}, nil
}

func TestPlanDeterministic(t *testing.T) {
	a := Plan(3, []string{"x", "y"}, 4, 2)
	b := Plan(3, []string{"x", "y"}, 4, 2)
	if len(a) != 16 {
		t.Fatalf("plan has %d jobs, want 16", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan not deterministic at job %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Index != i {
			t.Fatalf("job %d has Index %d", i, a[i].Index)
		}
	}
	// Seeds must be pairwise distinct and independent of list position.
	seen := map[uint64]bool{}
	for _, j := range a {
		if seen[j.Seed] {
			t.Fatalf("duplicate seed %#x in plan", j.Seed)
		}
		seen[j.Seed] = true
	}
	solo := Plan(3, []string{"y"}, 4, 2)
	if solo[0].Seed != a[8].Seed {
		t.Fatal("job seed depends on plan position, not (root, label)")
	}
}

// TestRunDeterministicAcrossWorkers is the core fleet invariant: 1 worker
// and 8 workers produce byte-identical aggregate reports.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	jobs := Plan(7, []string{"alpha", "beta", "gamma"}, 5, 2)
	r1 := NewRunner(Config{Workers: 1}).Run(jobs, fakeRun)
	r8 := NewRunner(Config{Workers: 8}).Run(jobs, fakeRun)
	a, b := r1.RenderAggregate(), r8.RenderAggregate()
	if a != b {
		t.Fatalf("aggregate differs between 1 and 8 workers:\n--- w1 ---\n%s\n--- w8 ---\n%s", a, b)
	}
	if !strings.Contains(a, "30 ok, 0 failed") {
		t.Fatalf("unexpected summary in:\n%s", a)
	}
	for i, res := range r8.Results {
		if res.Job.Index != i {
			t.Fatalf("result %d out of plan order (job index %d)", i, res.Job.Index)
		}
	}
}

// TestPanicIsolation: a panicking job is reported as failed with its stack
// captured while every other job completes.
func TestPanicIsolation(t *testing.T) {
	jobs := Plan(1, []string{"ok", "boom"}, 3, 1)
	run := func(job Job) (string, []Stat, error) {
		if job.Exp == "boom" && job.SeedIndex == 1 {
			panic("shard exploded")
		}
		return fakeRun(job)
	}
	rep := NewRunner(Config{Workers: 4}).Run(jobs, run)
	failed := rep.Failed()
	if len(failed) != 1 {
		t.Fatalf("want exactly 1 failed job, got %d", len(failed))
	}
	var pe *PanicError
	if !errors.As(failed[0].Err, &pe) {
		t.Fatalf("failed job error is %T, want *PanicError", failed[0].Err)
	}
	if pe.Value != "shard exploded" || !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("panic not captured: value=%v stack=%q", pe.Value, pe.Stack[:40])
	}
	if IsTransient(failed[0].Err) {
		t.Fatal("panics must not be retried as transient")
	}
	agg := rep.RenderAggregate()
	if !strings.Contains(agg, "FAILED boom/seed=1/shard=0: panic: shard exploded") {
		t.Fatalf("aggregate missing failure line:\n%s", agg)
	}
	if !strings.Contains(agg, "5 ok, 1 failed: boom/seed=1/shard=0") {
		t.Fatalf("aggregate missing summary:\n%s", agg)
	}
	if strings.Contains(agg, "goroutine") {
		t.Fatal("aggregate must not embed stacks (goroutine IDs are unstable)")
	}
}

// TestPanicAggregateStable: the rendered aggregate with a panic inside is
// still identical across worker counts (stacks stay out of the report).
func TestPanicAggregateStable(t *testing.T) {
	jobs := Plan(5, []string{"a", "b"}, 4, 1)
	run := func(job Job) (string, []Stat, error) {
		if job.Exp == "a" && job.SeedIndex == 2 {
			panic(fmt.Sprintf("bad shard %d", job.Shard))
		}
		return fakeRun(job)
	}
	a := NewRunner(Config{Workers: 1}).Run(jobs, run).RenderAggregate()
	b := NewRunner(Config{Workers: 8}).Run(jobs, run).RenderAggregate()
	if a != b {
		t.Fatalf("panic aggregate differs across workers:\n%s\nvs\n%s", a, b)
	}
}

func TestTimeoutIsTransientAndRetried(t *testing.T) {
	jobs := Plan(1, []string{"slow"}, 1, 1)
	var mu sync.Mutex
	calls := 0
	run := func(job Job) (string, []Stat, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		time.Sleep(200 * time.Millisecond) //tspuvet:allow walltime: deliberately wedges the job so the real timeout fires
		return "never", nil, nil
	}
	rep := NewRunner(Config{Workers: 1, Timeout: 10 * time.Millisecond, Retries: 2, Backoff: time.Millisecond}).Run(jobs, run)
	res := rep.Results[0]
	if !res.Failed() || !IsTransient(res.Err) {
		t.Fatalf("timeout should be a transient failure, got %v", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("want 3 attempts (1 + 2 retries), got %d", res.Attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("run func called %d times, want 3", calls)
	}
	if rep.Metrics.Retried != 2 {
		t.Fatalf("metrics recorded %d retries, want 2", rep.Metrics.Retried)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	jobs := Plan(1, []string{"flaky"}, 2, 1)
	var mu sync.Mutex
	attempts := map[int]int{}
	run := func(job Job) (string, []Stat, error) {
		mu.Lock()
		attempts[job.Index]++
		n := attempts[job.Index]
		mu.Unlock()
		if job.SeedIndex == 0 && n == 1 {
			return "", nil, Transient(errors.New("blip"))
		}
		return fakeRun(job)
	}
	rep := NewRunner(Config{Workers: 2, Retries: 1}).Run(jobs, run)
	if len(rep.Failed()) != 0 {
		t.Fatalf("transient blip should recover, failures: %v", rep.Failed()[0].Err)
	}
	if rep.Results[0].Attempts != 2 || rep.Results[1].Attempts != 1 {
		t.Fatalf("attempts = %d,%d; want 2,1", rep.Results[0].Attempts, rep.Results[1].Attempts)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	jobs := Plan(1, []string{"dead"}, 1, 1)
	run := func(job Job) (string, []Stat, error) {
		return "", nil, errors.New("permanently broken")
	}
	rep := NewRunner(Config{Workers: 1, Retries: 5}).Run(jobs, run)
	if rep.Results[0].Attempts != 1 {
		t.Fatalf("permanent error retried %d times", rep.Results[0].Attempts-1)
	}
}

func TestMetricsAccounting(t *testing.T) {
	jobs := Plan(2, []string{"a", "b"}, 3, 1)
	var mu sync.Mutex
	var peakRunning int
	cfg := Config{Workers: 3, OnUpdate: func(s Snapshot) {
		mu.Lock()
		if s.Running > peakRunning {
			peakRunning = s.Running
		}
		mu.Unlock()
	}}
	rep := NewRunner(cfg).Run(jobs, fakeRun)
	m := rep.Metrics
	if m.Queued != 6 || m.Done != 6 || m.Failed != 0 || m.Running != 0 {
		t.Fatalf("bad final snapshot: %+v", m)
	}
	if m.JobWall < 0 || m.Elapsed <= 0 {
		t.Fatalf("bad timing in snapshot: %+v", m)
	}
	mu.Lock()
	defer mu.Unlock()
	if peakRunning < 1 || peakRunning > 3 {
		t.Fatalf("peak running %d outside [1,3]", peakRunning)
	}
}

func TestExtractStats(t *testing.T) {
	text := "== Table X: sample (2000 trials) ==\n" +
		"Vantage     SNI-I    QUIC\n" +
		"----------  -------  ----\n" +
		"rostelecom  0.1000%  0.0000%\n" +
		"ertelecom   1.7000%  0.7000%\n" +
		"within two hops: 72.2%\n" +
		"counts 1,302 and (42)\n"
	stats := ExtractStats(text)
	want := []Stat{
		{"rostelecom[0]", 0.1}, {"rostelecom[1]", 0},
		{"ertelecom[0]", 1.7}, {"ertelecom[1]", 0.7},
		{"within two hops:", 72.2},
		{"counts[0]", 1302}, {"counts[1]", 42},
	}
	if len(stats) != len(want) {
		t.Fatalf("extracted %d stats, want %d: %+v", len(stats), len(want), stats)
	}
	for i, w := range want {
		if stats[i].Key != w.Key || stats[i].Value != w.Value {
			t.Errorf("stat %d = %+v, want %+v", i, stats[i], w)
		}
	}
	// Title lines must contribute nothing: their numerals are names.
	for _, s := range stats {
		if strings.Contains(s.Key, "Table") {
			t.Errorf("title leaked into stats: %+v", s)
		}
	}
}

func TestAggregateStatsMoments(t *testing.T) {
	jobs := Plan(1, []string{"m"}, 4, 1)
	vals := []float64{1, 2, 3, 4}
	run := func(job Job) (string, []Stat, error) {
		return fmt.Sprintf("v=%g", vals[job.SeedIndex]),
			[]Stat{{Key: "v", Value: vals[job.SeedIndex]}}, nil
	}
	agg := NewRunner(Config{Workers: 2}).Run(jobs, run).RenderAggregate()
	for _, frag := range []string{"v     4  2.5   1.29099  1    4"} {
		if !strings.Contains(agg, frag) {
			t.Fatalf("aggregate missing %q:\n%s", frag, agg)
		}
	}
}
