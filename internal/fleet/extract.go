package fleet

import (
	"fmt"
	"strconv"
	"strings"
)

// ExtractStats pulls labelled numeric values out of a rendered artifact so
// experiments without a dedicated stats hook can still be aggregated across
// seeds. Each line contributes its numeric tokens keyed by the line's
// leading label text; repeated labels get a #n occurrence suffix and
// multi-number lines a [i] column suffix. The extraction is lossy by design:
// it only has to be deterministic and stable across seeds, not complete.
func ExtractStats(text string) []Stat {
	var stats []Stat
	seen := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		// Titles and headers carry numerals that are names, not samples.
		if strings.HasPrefix(trimmed, "==") || strings.HasPrefix(trimmed, "###") {
			continue
		}
		var label []string
		var nums []float64
		for _, f := range strings.Fields(trimmed) {
			if v, ok := parseNum(f); ok {
				nums = append(nums, v)
			} else if len(nums) == 0 && !isRule(f) {
				label = append(label, f)
			}
		}
		if len(nums) == 0 {
			continue
		}
		key := strings.Join(label, " ")
		if key == "" {
			key = "(line)"
		}
		seen[key]++
		if n := seen[key]; n > 1 {
			key = fmt.Sprintf("%s#%d", key, n)
		}
		for i, v := range nums {
			k := key
			if len(nums) > 1 {
				k = fmt.Sprintf("%s[%d]", key, i)
			}
			stats = append(stats, Stat{Key: k, Value: v})
		}
	}
	return stats
}

// parseNum accepts table cells like "0.15%", "(42)", "1,302", "12.3":
// strip decoration, require the remainder to parse fully as a float.
func parseNum(tok string) (float64, bool) {
	tok = strings.Trim(tok, "()[]{},;:")
	tok = strings.TrimSuffix(tok, "%")
	tok = strings.ReplaceAll(tok, ",", "")
	if tok == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// isRule reports separator/bar tokens ("----", "####", "|") that would
// otherwise pollute line labels.
func isRule(tok string) bool {
	return strings.Trim(tok, "-#=|_") == ""
}
