// Package fleet fans independent (experiment, seed, shard) simulations out
// across a goroutine worker pool and merges their results into aggregate
// statistics.
//
// Parallelism lives strictly at whole-simulation granularity: each job builds
// its own single-threaded deterministic lab, so the fleet never synchronizes
// inside a simulation and determinism reduces to handing every job the same
// seed regardless of scheduling. Job seeds come from sim.StreamSeed, a pure
// function of (root seed, job label), which makes a sequential run and a
// 16-worker run byte-identical in their aggregate reports.
//
// A panicking job is captured as that job's error — with its stack preserved
// for diagnostics — and never kills the fleet; timeouts and errors marked
// Transient get a bounded retry with exponential backoff.
package fleet

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"tspusim/internal/sim"
)

// Job is one unit of fleet work: a single experiment run against a lab built
// from a derived seed, optionally on one shard of the endpoint population.
type Job struct {
	Index     int    // position in plan order; reports iterate in this order
	Exp       string // experiment ID
	SeedIndex int    // 0..seeds-1, the logical replica number
	Shard     int    // 0..Shards-1
	Shards    int    // total shards, so runners can split populations
	Seed      uint64 // derived lab seed: sim.StreamSeed(root, Label())
}

// Label names the job for seed derivation, logs, and reports.
func (j Job) Label() string { return jobLabel(j.Exp, j.SeedIndex, j.Shard) }

func jobLabel(exp string, seedIndex, shard int) string {
	return fmt.Sprintf("%s/seed=%d/shard=%d", exp, seedIndex, shard)
}

// Plan derives the deterministic job list for ids × seeds × shards. Every
// job's seed is a pure function of (root, job label), so the plan is
// identical no matter how it is later scheduled.
func Plan(root uint64, ids []string, seeds, shards int) []Job {
	if seeds < 1 {
		seeds = 1
	}
	if shards < 1 {
		shards = 1
	}
	jobs := make([]Job, 0, len(ids)*seeds*shards)
	for _, id := range ids {
		for s := 0; s < seeds; s++ {
			for sh := 0; sh < shards; sh++ {
				label := jobLabel(id, s, sh)
				jobs = append(jobs, Job{
					Index:     len(jobs),
					Exp:       id,
					SeedIndex: s,
					Shard:     sh,
					Shards:    shards,
					Seed:      sim.StreamSeed(root, label),
				})
			}
		}
	}
	return jobs
}

// Stat is one labelled numeric observation from a single job, kept in the
// order the experiment emitted it so aggregate tables preserve row order.
type Stat struct {
	Key   string
	Value float64
}

// RunFunc executes one job and returns its rendered output plus ordered
// summary statistics for cross-seed aggregation.
type RunFunc func(Job) (output string, stats []Stat, err error)

// JobResult is the outcome of one job, including retry and timing metadata.
// Wall and Attempts are diagnostics and never enter aggregate reports (they
// vary run to run; the aggregate must not).
type JobResult struct {
	Job      Job
	Output   string
	Stats    []Stat
	Err      error
	Attempts int
	Wall     time.Duration
}

// Failed reports whether the job ended in error after all retries.
func (r *JobResult) Failed() bool { return r.Err != nil }

// PanicError reports a job that panicked. Error deliberately excludes the
// stack — goroutine IDs differ run to run and aggregate reports must be
// byte-stable — but Stack preserves it for diagnostics.
type PanicError struct {
	Label string
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// transientError marks a failure the runner's bounded retry applies to.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err to mark it retryable (timeouts, external flakes). In a
// deterministic simulation most failures are permanent; only opt-in failures
// burn retry budget.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked Transient.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Config tunes a Runner. The zero value is a sequential runner with no
// timeout and no retries.
type Config struct {
	// Workers is the goroutine pool size; values below 1 run sequentially.
	Workers int
	// Timeout caps one attempt's wall time; 0 disables. A timed-out attempt
	// counts as a Transient failure (its goroutine is abandoned, never
	// joined — acceptable because jobs share no mutable state).
	Timeout time.Duration
	// Retries is how many extra attempts a Transient failure gets.
	Retries int
	// Backoff is the sleep before the first retry, doubling each attempt.
	Backoff time.Duration
	// OnUpdate, if set, receives a progress snapshot after every job
	// transition. It is called from worker goroutines and must be
	// goroutine-safe.
	OnUpdate func(Snapshot)
}

// Runner executes planned jobs across a worker pool.
type Runner struct {
	cfg Config
	m   metrics
}

// NewRunner builds a Runner from cfg.
func NewRunner(cfg Config) *Runner {
	r := &Runner{cfg: cfg}
	r.m.onUpdate = cfg.OnUpdate
	return r
}

// Run executes every job and returns the completed report. Results land in
// plan order regardless of which worker finished when, so everything derived
// from them is schedule-independent.
func (r *Runner) Run(jobs []Job, fn RunFunc) *Report {
	workers := r.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	r.m.begin(len(jobs))

	results := make([]JobResult, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runJob(jobs[i], fn)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return &Report{Results: results, Metrics: r.m.snapshot()}
}

// runJob drives one job through its attempt/retry loop.
func (r *Runner) runJob(job Job, fn RunFunc) JobResult {
	r.m.jobStarted()
	res := JobResult{Job: job}
	start := time.Now() //tspuvet:allow walltime: per-job wall time is diagnostic metadata, excluded from aggregate reports
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		out, stats, err := r.attempt(job, fn)
		if err == nil {
			res.Output, res.Stats, res.Err = out, stats, nil
			break
		}
		res.Err = err
		if attempt >= r.cfg.Retries || !IsTransient(err) {
			break
		}
		r.m.jobRetried()
		if r.cfg.Backoff > 0 {
			time.Sleep(r.cfg.Backoff << uint(attempt)) //tspuvet:allow walltime: retry backoff paces real goroutines, not simulation events
		}
	}
	res.Wall = time.Since(start) //tspuvet:allow walltime: diagnostic only; RenderAggregate never includes Wall
	r.m.jobDone(res.Wall, res.Failed())
	return res
}

// attempt runs fn once with panic isolation and the configured timeout. The
// job runs on its own goroutine so a panic unwinds there and a timeout can
// abandon it without killing the fleet.
func (r *Runner) attempt(job Job, fn RunFunc) (string, []Stat, error) {
	type outcome struct {
		out   string
		stats []Stat
		err   error
	}
	// Buffered so an abandoned (timed-out) attempt can still complete its
	// send and exit instead of leaking blocked forever.
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &PanicError{
					Label: job.Label(),
					Value: p,
					Stack: string(debug.Stack()),
				}}
			}
		}()
		out, stats, err := fn(job)
		ch <- outcome{out: out, stats: stats, err: err}
	}()

	if r.cfg.Timeout <= 0 {
		oc := <-ch
		return oc.out, oc.stats, oc.err
	}
	timer := time.NewTimer(r.cfg.Timeout) //tspuvet:allow walltime: the per-attempt timeout bounds real wall time of a wedged job
	defer timer.Stop()
	select {
	case oc := <-ch:
		return oc.out, oc.stats, oc.err
	case <-timer.C:
		return "", nil, Transient(fmt.Errorf("fleet: job %s exceeded timeout %v", job.Label(), r.cfg.Timeout))
	}
}
