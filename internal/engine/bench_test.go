package engine

import (
	"fmt"
	"testing"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
	"tspusim/internal/tspu"
)

// Aggregate throughput benchmarks, gated by make bench-throughput against
// BENCH_engine.json. Each op is one full batch through the pipeline; the
// headline metric is the custom pps (packets/sec, bigger is better, max
// across samples), which perfstat gates alongside the exact zero-allocation
// budget.
//
// The gated variants run Workers: 1 — lanes inline on the calling goroutine,
// the deterministic zero-alloc configuration and the honest one for the
// single-core CI box. BenchmarkEngine_WorkerFanout measures the goroutine
// fan-out path for multi-core machines and is deliberately outside the gate
// pattern: its wall-clock is hardware-dependent in exactly the way a
// committed baseline must not be.

const benchBatch = 512

// benchStream builds the steady-state batch: established-flow data segments
// spread over 16 host pairs and 32 ports, both directions. chRatio of the
// packets are ClientHellos with a non-blocked SNI, so the TLS parse path is
// in the loop without any verdict mutating the packets between iterations.
func benchStream(chRatio float64) ([]*packet.Packet, []netem.Direction) {
	rng := sim.NewRand(42)
	remotes := testRemotes()
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	ch := (&tlsx.ClientHelloSpec{ServerName: "example.org"}).Build()
	pkts := make([]*packet.Packet, 0, benchBatch)
	dirs := make([]netem.Direction, 0, benchBatch)
	for i := 0; i < benchBatch; i++ {
		remote := remotes[i%len(remotes)]
		sport := uint16(20000 + (i/len(remotes))%32)
		switch {
		case rng.Float64() < chRatio:
			pkts = append(pkts, packet.NewTCP(testLocal, remote, sport, 443, packet.FlagsPSHACK, 2, 2, ch))
			dirs = append(dirs, netem.AtoB)
		case i%3 == 2:
			pkts = append(pkts, packet.NewTCP(remote, testLocal, 443, sport, packet.FlagsPSHACK, 9, 9, payload))
			dirs = append(dirs, netem.BtoA)
		default:
			pkts = append(pkts, packet.NewTCP(testLocal, remote, sport, 443, packet.FlagsPSHACK, 9, 9, payload))
			dirs = append(dirs, netem.AtoB)
		}
	}
	return pkts, dirs
}

func benchDevice(s *sim.Sim, name string, shards int) *tspu.Device {
	d := tspu.NewDevice(tspu.Config{Name: name, Sim: s, LocalDir: netem.AtoB, Shards: shards})
	ctl := tspu.NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *tspu.Policy) {
		p.SNI1Domains.Add("facebook.com", "twitter.com", "meduza.io")
		p.SNI2Domains.Add("play.google.com")
		p.SNI4Domains.Add("twitter.com", "fbcdn.net")
	})
	return d
}

func benchThroughput(b *testing.B, devices, shards, workers int, chRatio float64) {
	s := sim.New()
	chain := make([]*tspu.Device, devices)
	for i := range chain {
		chain[i] = benchDevice(s, fmt.Sprintf("d%d", i), shards)
	}
	e := New(Config{Sim: s, Devices: chain, Workers: workers, BatchSize: benchBatch})
	pkts, dirs := benchStream(chRatio)
	run := func() {
		for i, p := range pkts {
			e.Push(p, dirs[i])
		}
		e.Process()
	}
	for i := 0; i < 8; i++ {
		run() // warm conntrack entries, lane queues, entry pools
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(len(pkts))/secs, "pps")
	}
}

func BenchmarkEngine_Passthrough(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchThroughput(b, 1, shards, 1, 0)
		})
	}
}

func BenchmarkEngine_TLSMix(b *testing.B) {
	benchThroughput(b, 1, 8, 1, 0.1)
}

func BenchmarkEngine_Chain2(b *testing.B) {
	benchThroughput(b, 2, 8, 1, 0)
}

// BenchmarkEngine_WorkerFanout is NOT in the regression gate: parallel
// speedup is a property of the host's core count, so its numbers are only
// meaningful relative to each other on the machine at hand. On a multi-core
// box expect shards=8,workers=8 to approach 8x the workers=1 pps; on one
// core it measures pure fan-out overhead.
func BenchmarkEngine_WorkerFanout(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchThroughput(b, 1, 8, workers, 0)
		})
	}
}
