package engine

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
	"tspusim/internal/tspu"
)

// The engine's contract is byte-equivalence: batching, sharding, and worker
// fan-out are performance structure, not behavior. Every test here drives
// the same seeded trace through the batch pipeline and a sequential
// reference and requires identical verdicts and wire bytes.

var (
	testLocal   = packet.MustAddr("10.0.0.2")
	testBlocked = packet.MustAddr("198.51.100.7")
)

func testRemotes() []netip.Addr {
	remotes := make([]netip.Addr, 0, 16)
	for i := 1; i <= 16; i++ {
		remotes = append(remotes, packet.MustAddr(fmt.Sprintf("203.0.113.%d", i)))
	}
	return remotes
}

// testStream covers the datapath branches across many host pairs, so
// packets spread over all lanes.
func testStream(seed uint64, n int) []*packet.Packet {
	rng := sim.NewRand(seed)
	remotes := testRemotes()
	snis := []string{
		"facebook.com", "api.twitter.com", "TWITTER.COM",
		"play.google.com", "fbcdn.net", "meduza.io", "example.org", "",
	}
	pkts := make([]*packet.Packet, 0, n)
	for len(pkts) < n {
		remote := remotes[rng.Intn(len(remotes))]
		sport := uint16(20000 + rng.Intn(32))
		switch rng.Intn(9) {
		case 0:
			pkts = append(pkts, packet.NewTCP(testLocal, remote, sport, 443, packet.FlagSYN, 1, 0, nil))
		case 1:
			pkts = append(pkts, packet.NewTCP(remote, testLocal, 443, sport, packet.FlagsSYNACK, 1, 2, nil))
		case 2:
			spec := &tlsx.ClientHelloSpec{ServerName: snis[rng.Intn(len(snis))]}
			pkts = append(pkts, packet.NewTCP(testLocal, remote, sport, 443, packet.FlagsPSHACK, 2, 2, spec.Build()))
		case 3:
			soup := make([]byte, 1+rng.Intn(512))
			for i := range soup {
				soup[i] = byte(rng.Uint64())
			}
			pkts = append(pkts, packet.NewTCP(testLocal, remote, sport, 443, packet.FlagsPSHACK, 2, 2, soup))
		case 4:
			pkts = append(pkts, packet.NewTCP(remote, testLocal, 443, sport, packet.FlagsPSHACK, 9, 9, []byte("HTTP/1.1 200 OK")))
		case 5:
			pay := make([]byte, 1200)
			pay[0] = 0xc0
			for i := 1; i < 16; i++ {
				pay[i] = byte(rng.Uint64())
			}
			pkts = append(pkts, packet.NewUDP(testLocal, remote, sport, 443, pay))
		case 6:
			pkts = append(pkts, packet.NewTCP(testLocal, remote, sport, 443, packet.FlagsPSHACK, 9, 9, make([]byte, rng.Intn(1400))))
		case 7:
			pkts = append(pkts, packet.NewTCP(testLocal, testBlocked, sport, 443, packet.FlagSYN, 1, 0, nil))
		case 8:
			if rng.Bool(0.5) {
				pkts = append(pkts, packet.NewTCP(remote, testLocal, 443, sport, packet.FlagACK, 5, 5, nil))
			} else {
				pkts = append(pkts, packet.NewTCP(remote, testLocal, 443, sport, packet.FlagSYN, 5, 0, nil))
			}
		}
	}
	return pkts
}

func testDir(p *packet.Packet) netem.Direction {
	if p.IP.Src == testLocal {
		return netem.AtoB
	}
	return netem.BtoA
}

// testDevice builds a per-flow-random device: random outcomes depend only on
// flow identity, which is what makes batch order irrelevant.
func testDevice(s *sim.Sim, name string, shards int, flowSeed uint64) *tspu.Device {
	d := tspu.NewDevice(tspu.Config{
		Name:        name,
		Sim:         s,
		LocalDir:    netem.AtoB,
		Shards:      shards,
		PerFlowRand: true,
		FlowSeed:    flowSeed,
		FailureRates: map[tspu.BlockType]float64{
			tspu.SNI1: 0.05, tspu.SNI2: 0.05, tspu.SNI4: 0.03, tspu.QUICBlock: 0.06, tspu.IPBlock: 0.02,
		},
	})
	ctl := tspu.NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *tspu.Policy) {
		p.SNI1Domains.Add("facebook.com", "twitter.com", "meduza.io")
		p.SNI2Domains.Add("play.google.com")
		p.SNI4Domains.Add("twitter.com", "fbcdn.net")
		p.BlockedIPs[testBlocked] = true
	})
	return d
}

// nullPipe is the sequential reference's Pipe: scheduling goes straight to
// the simulator, injection is dropped (the reference streams carry no
// fragments).
type nullPipe struct{ s *sim.Sim }

func (p nullPipe) Inject(pkt *packet.Packet, dir netem.Direction) {}
func (p nullPipe) Now() time.Duration                             { return p.s.Now() }
func (p nullPipe) After(d time.Duration, fn func())               { p.s.After(d, fn) }

// refChainRun mirrors netem.Link.process over a device slice.
func refChainRun(devs []*tspu.Device, pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	idx, step := 0, 1
	if dir == netem.BtoA {
		idx, step = len(devs)-1, -1
	}
	for ; idx >= 0 && idx < len(devs); idx += step {
		if devs[idx].Handle(pipe, pkt, dir) == netem.Drop {
			return netem.Drop
		}
	}
	return netem.Pass
}

// runSequential produces the reference verdict+wire log.
func runSequential(devs []*tspu.Device, s *sim.Sim, stream []*packet.Packet) []string {
	pipe := nullPipe{s: s}
	log := make([]string, 0, len(stream))
	for _, src := range stream {
		p := src.Clone()
		act := refChainRun(devs, pipe, p, testDir(p))
		wire, _ := p.Marshal()
		log = append(log, fmt.Sprintf("%v %x", act, wire))
	}
	return log
}

// runBatched produces the engine verdict+wire log, processing in batches of
// batchSize.
func runBatched(e *Engine, stream []*packet.Packet, batchSize int) []string {
	log := make([]string, 0, len(stream))
	flush := func() {
		for _, it := range e.Process() {
			wire, _ := it.Pkt.Marshal()
			log = append(log, fmt.Sprintf("%v %x", it.Verdict, wire))
		}
	}
	queued := 0
	for _, src := range stream {
		p := src.Clone()
		if !e.Push(p, testDir(p)) {
			flush()
			queued = 0
			e.Push(p, testDir(p))
		}
		queued++
		if queued == batchSize {
			flush()
			queued = 0
		}
	}
	flush()
	return log
}

func compareLogs(t *testing.T, label string, ref, got []string) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d reference packets, %d engine packets", label, len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: packet %d diverged:\nsequential: %s\nbatched:    %s", label, i, ref[i], got[i])
		}
	}
}

// TestBatchSequentialEquivalence is the core property: the batch pipeline is
// byte-equivalent to packet-at-a-time Device.Handle, across batch sizes.
func TestBatchSequentialEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		for _, batchSize := range []int{1, 7, 64, 512} {
			stream := testStream(seed, 1500)
			seqSim := sim.New()
			seqDev := testDevice(seqSim, "seq", 8, seed)
			ref := runSequential([]*tspu.Device{seqDev}, seqSim, stream)

			batSim := sim.New()
			batDev := testDevice(batSim, "bat", 8, seed)
			e := New(Config{Sim: batSim, Devices: []*tspu.Device{batDev}})
			got := runBatched(e, stream, batchSize)
			compareLogs(t, fmt.Sprintf("seed=%d batch=%d", seed, batchSize), ref, got)
		}
	}
}

// TestMultiDeviceChainEquivalence runs a two-TSPU chain (the asymmetric
// multi-device path of §7) batched vs sequential, including direction-
// dependent traversal order.
func TestMultiDeviceChainEquivalence(t *testing.T) {
	stream := testStream(11, 1500)
	seqSim := sim.New()
	seqDevs := []*tspu.Device{
		testDevice(seqSim, "edge", 4, 100),
		testDevice(seqSim, "core", 4, 200),
	}
	ref := runSequential(seqDevs, seqSim, stream)

	batSim := sim.New()
	batDevs := []*tspu.Device{
		testDevice(batSim, "edge", 4, 100),
		testDevice(batSim, "core", 4, 200),
	}
	e := New(Config{Sim: batSim, Devices: batDevs})
	got := runBatched(e, stream, 64)
	compareLogs(t, "two-device chain", ref, got)
}

// TestWorkerCountDeterminism pins that the worker count changes wall-clock
// structure only: 1, 2, and 8 workers produce one verdict stream. Run under
// -race this also exercises the lane-disjointness claim.
func TestWorkerCountDeterminism(t *testing.T) {
	stream := testStream(5, 2000)
	var ref []string
	for _, workers := range []int{1, 2, 8} {
		s := sim.New()
		d := testDevice(s, "w", 8, 5)
		e := New(Config{Sim: s, Devices: []*tspu.Device{d}, Workers: workers})
		got := runBatched(e, stream, 256)
		if ref == nil {
			ref = got
			continue
		}
		compareLogs(t, fmt.Sprintf("workers=%d", workers), ref, got)
	}
}

// TestEngineMultiWorkerRace forces Workers well past 1 with a stream large
// enough for the race detector to see real lane interleaving; the verdict
// stream must still match the single-worker reference. This is the dynamic
// cross-check of the lanecheck analyzer's static lane-isolation contract.
func TestEngineMultiWorkerRace(t *testing.T) {
	stream := testStream(7, 4000)
	var ref []string
	for _, workers := range []int{1, 8} {
		s := sim.New()
		d := testDevice(s, "mw", 8, 7)
		e := New(Config{Sim: s, Devices: []*tspu.Device{d}, Workers: workers})
		got := runBatched(e, stream, 256)
		if ref == nil {
			ref = got
			continue
		}
		compareLogs(t, fmt.Sprintf("workers=%d", workers), ref, got)
	}
}

// TestShardCountDeterminism pins that lane count is invisible in behavior.
func TestShardCountDeterminism(t *testing.T) {
	stream := testStream(6, 2000)
	var ref []string
	for _, shards := range []int{1, 4, 8} {
		s := sim.New()
		d := testDevice(s, "s", shards, 6)
		e := New(Config{Sim: s, Devices: []*tspu.Device{d}})
		got := runBatched(e, stream, 256)
		if ref == nil {
			ref = got
			continue
		}
		compareLogs(t, fmt.Sprintf("shards=%d", shards), ref, got)
	}
}

// TestFragmentReleaseAndTimeout exercises the buffered Pipe: fragment
// queues fill across batches, the completed queue re-enters the chain via
// Inject and reaches Deliver with rewritten TTLs, and the timeout scheduled
// through the buffered After discards an incomplete queue when the engine
// advances the clock.
func TestFragmentReleaseAndTimeout(t *testing.T) {
	s := sim.New()
	d := testDevice(s, "frag", 4, 9)
	var delivered []*packet.Packet
	e := New(Config{
		Sim:     s,
		Devices: []*tspu.Device{d},
		Deliver: func(pkt *packet.Packet, dir netem.Direction) { delivered = append(delivered, pkt) },
	})

	mk := func(id uint16, ttl0, ttl1 uint8) []*packet.Packet {
		p := packet.NewTCP(testLocal, packet.MustAddr("203.0.113.9"), 41000, 7547, packet.FlagSYN, 1, 0, nil)
		p.IP.ID = id
		frags, err := packet.FragmentCount(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		frags[0].IP.TTL = ttl0
		frags[1].IP.TTL = ttl1
		return frags
	}

	// Complete queue: both fragments delivered together, TTLs equalized.
	frags := mk(900, 64, 12)
	e.Push(frags[0], netem.AtoB)
	for _, it := range e.Process() {
		if it.Verdict != netem.Drop {
			t.Fatalf("buffered fragment verdict = %v, want Drop", it.Verdict)
		}
	}
	if len(delivered) != 0 {
		t.Fatal("fragments released before the queue completed")
	}
	e.Push(frags[1], netem.AtoB)
	e.Process()
	if len(delivered) != 2 {
		t.Fatalf("delivered %d fragments, want 2", len(delivered))
	}
	if delivered[0].IP.TTL != delivered[1].IP.TTL || delivered[0].IP.TTL != 64 {
		t.Fatalf("TTLs after release: %d, %d — want both 64 (first fragment's)", delivered[0].IP.TTL, delivered[1].IP.TTL)
	}

	// Incomplete queue: discarded by the timeout flushed through the
	// buffered pipe once the clock advances past the 5 s fragment timeout.
	delivered = delivered[:0]
	frags = mk(901, 64, 64)
	e.Push(frags[0], netem.AtoB)
	e.Process()
	if d.PendingFragQueues() != 1 {
		t.Fatalf("open fragment queues = %d, want 1", d.PendingFragQueues())
	}
	e.Advance(10*time.Second, 0)
	if d.PendingFragQueues() != 0 {
		t.Fatalf("fragment queue survived its timeout: %d open", d.PendingFragQueues())
	}
	if len(delivered) != 0 {
		t.Fatal("incomplete queue delivered fragments")
	}
}

// TestPushRingFull pins the backpressure contract.
func TestPushRingFull(t *testing.T) {
	s := sim.New()
	d := testDevice(s, "ring", 1, 1)
	e := New(Config{Sim: s, Devices: []*tspu.Device{d}, BatchSize: 4})
	p := packet.NewTCP(testLocal, packet.MustAddr("203.0.113.1"), 40000, 443, packet.FlagSYN, 1, 0, nil)
	for i := 0; i < 4; i++ {
		if !e.Push(p.Clone(), netem.AtoB) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if e.Push(p.Clone(), netem.AtoB) {
		t.Fatal("push accepted beyond capacity")
	}
	if got := len(e.Process()); got != 4 {
		t.Fatalf("processed %d, want 4", got)
	}
	if !e.Push(p.Clone(), netem.AtoB) {
		t.Fatal("push refused after Process drained the ring")
	}
}

// TestProcessSteadyStateDoesNotAllocate pins the engine's own per-batch
// bookkeeping (scatter queues, pipes, counters) into the zero-allocation
// contract, on pass-through traffic over warmed flows.
func TestProcessSteadyStateDoesNotAllocate(t *testing.T) {
	s := sim.New()
	d := testDevice(s, "alloc", 8, 3)
	e := New(Config{Sim: s, Devices: []*tspu.Device{d}, BatchSize: 64})
	remotes := testRemotes()
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		pkts[i] = packet.NewTCP(testLocal, remotes[i%len(remotes)], uint16(20000+i), 443, packet.FlagsPSHACK, 9, 9, []byte("not a client hello, just bytes"))
	}
	run := func() {
		for _, p := range pkts {
			e.Push(p, netem.AtoB)
		}
		e.Process()
	}
	for i := 0; i < 16; i++ {
		run() // warm flow entries, lane queues, and pools
	}
	if allocs := testing.AllocsPerRun(300, run); allocs != 0 {
		t.Fatalf("steady-state Process allocates %v/op, want 0", allocs)
	}
}
