// Package engine is the batched multi-device packet pipeline: the seam that
// turns the one-packet-one-call simulator datapath into a line-rate system.
// Packets are queued into a fixed-capacity ring, keyed once with the two-word
// packet.FlowKey4, scattered by canonical host-pair hash into lanes, and run
// through an in-order chain of TSPU devices via their sharded entry point —
// every lane owning a disjoint slice of conntrack, fragment, and counter
// state, so N workers process N lanes with no shared lock or aggregation
// point.
//
// The chain semantics mirror netem.Link exactly: packets traveling AtoB
// traverse device 0 first, BtoA the highest index first; a Drop verdict stops
// traversal; a device injecting a packet (fragment release) re-enters the
// chain one position past itself in the packet's direction of travel.
// Virtual-clock scheduling from inside a lane is buffered and flushed to the
// simulator after the batch barrier in lane order, because sim.Sim is
// single-threaded by design.
//
// Determinism does not depend on the worker count: lanes are disjoint,
// per-lane processing preserves arrival order, flushes happen in lane order,
// and devices built for the engine derive their randomness per flow
// (tspu.Config.PerFlowRand), so a trace produces one verdict stream whether
// it is run on 1 worker or 8, in batches or packet-at-a-time.
package engine

import (
	"fmt"
	"sync"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tspu"
)

// Config configures an Engine.
type Config struct {
	// Sim supplies virtual time and executes buffered After callbacks.
	Sim *sim.Sim
	// Devices is the in-path chain, physical order A-side to B-side. All
	// devices must be built with the same tspu.Config.Shards so lane
	// ownership lines up across the chain.
	Devices []*tspu.Device
	// Workers bounds concurrent lane processing; 0 or 1 runs lanes inline on
	// the calling goroutine (no goroutines, no synchronization — the fastest
	// mode on a single core).
	Workers int
	// BatchSize is the ring capacity (default 512).
	BatchSize int
	// Deliver, if set, receives every packet that survives the full chain —
	// both pushed packets with a Pass verdict and injected packets (fragment
	// releases) — after the batch barrier, in deterministic order.
	Deliver func(pkt *packet.Packet, dir netem.Direction)
}

// Item is one packet descriptor in the ring. Verdict is valid after the
// Process call that consumed the item returns.
type Item struct {
	Pkt     *packet.Packet
	Dir     netem.Direction
	Verdict netem.Action
	key     packet.FlowKey4
}

// Key returns the item's canonical compact flow key (valid after Process).
func (it *Item) Key() packet.FlowKey4 { return it.key }

// outPkt is a chain survivor awaiting post-barrier delivery.
type outPkt struct {
	pkt *packet.Packet
	dir netem.Direction
}

// laneState is one lane's batch-scoped buffers. Everything here is written
// only by the worker running the lane, between barriers.
//
//tspuvet:laneowned
type laneState struct {
	// q holds the indexes of this batch's items owned by the lane, in
	// arrival order.
	q []int32
	// afterD/afterF buffer Pipe.After calls for post-barrier flushing
	// (parallel slices; a single slice of 16-byte structs with a func field
	// would allocate on append growth the same, this reads simpler).
	afterD []time.Duration
	afterF []func()
	// out buffers chain survivors for post-barrier delivery.
	out []outPkt
	// drops counts Drop verdicts on this lane's packets (summed into the
	// engine totals at the barrier — workers must not share a counter word).
	drops uint64
}

// Engine is the batch pipeline. It is driven from the simulator's thread:
// Push/Process must not be called concurrently, but one Process call may fan
// lanes out over Workers goroutines internally.
type Engine struct {
	sim      *sim.Sim
	devices  []*tspu.Device
	deliver  func(pkt *packet.Packet, dir netem.Direction)
	lanes    int
	mask     uint64
	workers  int
	batchCap int

	items []Item
	n     int
	lane  []laneState
	// pipes[l][d] is the Pipe a device d invocation on lane l receives;
	// prebuilt so the hot loop takes addresses instead of allocating.
	pipes [][]lanePipe

	// packets / batches / drops count lifetime totals.
	packets uint64
	batches uint64
	drops   uint64
}

// New builds an engine. It panics on an empty chain or mismatched device
// lane counts — both are construction bugs, not runtime conditions.
func New(cfg Config) *Engine {
	if cfg.Sim == nil {
		panic("engine: Config.Sim is required")
	}
	if len(cfg.Devices) == 0 {
		panic("engine: no devices")
	}
	lanes := cfg.Devices[0].NumLanes()
	for _, d := range cfg.Devices[1:] {
		if d.NumLanes() != lanes {
			panic(fmt.Sprintf("engine: device %q has %d lanes, want %d", d.Name(), d.NumLanes(), lanes))
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > lanes {
		workers = lanes
	}
	e := &Engine{
		sim:      cfg.Sim,
		devices:  cfg.Devices,
		deliver:  cfg.Deliver,
		lanes:    lanes,
		mask:     uint64(lanes - 1),
		workers:  workers,
		batchCap: cfg.BatchSize,
		items:    make([]Item, cfg.BatchSize),
		lane:     make([]laneState, lanes),
		pipes:    make([][]lanePipe, lanes),
	}
	for l := 0; l < lanes; l++ {
		e.pipes[l] = make([]lanePipe, len(cfg.Devices))
		for d := range cfg.Devices {
			e.pipes[l][d] = lanePipe{e: e, lane: int32(l), idx: int32(d)}
		}
	}
	return e
}

// NumLanes reports the lane count shared by the device chain.
func (e *Engine) NumLanes() int { return e.lanes }

// Pending reports queued, not-yet-processed packets.
func (e *Engine) Pending() int { return e.n }

// Totals reports lifetime packets pushed through Process, batches run, and
// Drop verdicts.
func (e *Engine) Totals() (packets, batches, drops uint64) {
	return e.packets, e.batches, e.drops
}

// Push queues one packet for the next Process call. It reports false when
// the ring is full, in which case the caller must Process (or grow the
// batch) before retrying; the packet was not queued.
//
//tspuvet:hotpath
func (e *Engine) Push(pkt *packet.Packet, dir netem.Direction) bool {
	if e.n == e.batchCap {
		return false
	}
	it := &e.items[e.n]
	//tspuvet:retains ring item owns the packet until Process drains the batch and the caller reclaims it
	it.Pkt = pkt
	it.Dir = dir
	it.Verdict = netem.Pass
	e.n++
	return true
}

// Process runs every queued packet through the device chain and returns the
// items with verdicts filled in, in push order. The returned slice aliases
// the ring: it is valid until the next Push. The simulator must be idle (not
// mid-event) for the duration of the call.
//
//tspuvet:hotpath
func (e *Engine) Process() []Item {
	items := e.items[:e.n]
	if e.n == 0 {
		return items
	}
	// Stage 1 — key and scatter. One FlowKey4 extraction per packet; the
	// lane index is the canonical host-pair hash masked to the lane count,
	// the same function the sharded conntrack uses, so a lane's packets hit
	// only that lane's shard.
	for i := range items {
		it := &items[i]
		it.key = packet.FlowKey4Of(it.Pkt)
		l := it.key.PairHash() & e.mask
		e.lane[l].q = append(e.lane[l].q, int32(i))
	}
	// Stage 2 — per-lane chain runs, workers over disjoint lanes.
	if e.workers <= 1 {
		for l := 0; l < e.lanes; l++ {
			e.runLane(l, items)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(e.workers)
		for w := 0; w < e.workers; w++ {
			go func(w int) { //tspuvet:allow hotpath: worker fan-out is once per batch (Workers>1 only), amortized across up to BatchSize packets
				defer wg.Done()
				for l := w; l < e.lanes; l += e.workers {
					e.runLane(l, items)
				}
			}(w)
		}
		wg.Wait()
	}
	// Stage 3 — barrier passed: flush buffered clock work and survivors in
	// lane order. The flush order is a pure function of lane assignment, so
	// the simulator sees one deterministic schedule per trace regardless of
	// Workers.
	for l := 0; l < e.lanes; l++ {
		ln := &e.lane[l]
		e.drops += ln.drops
		ln.drops = 0
		for i, d := range ln.afterD {
			e.sim.After(d, ln.afterF[i])
			ln.afterF[i] = nil
		}
		ln.afterD = ln.afterD[:0]
		ln.afterF = ln.afterF[:0]
		if e.deliver != nil {
			for _, op := range ln.out {
				e.deliver(op.pkt, op.dir)
			}
		}
		for i := range ln.out {
			ln.out[i] = outPkt{}
		}
		ln.out = ln.out[:0]
		ln.q = ln.q[:0]
	}
	e.packets += uint64(e.n)
	e.batches++
	e.n = 0
	return items
}

// runLane drives one lane's slice of the batch through the chain in arrival
// order. Nothing outside the lane's own state is written; lanecheck verifies
// that claim over everything reachable from here.
//
//tspuvet:hotpath
//tspuvet:lane
func (e *Engine) runLane(l int, items []Item) {
	ln := &e.lane[l]
	for _, idx := range ln.q {
		it := &items[idx]
		start := 0
		if it.Dir == netem.BtoA {
			start = len(e.devices) - 1
		}
		//tspuvet:allow lanecheck: the scatter pass partitions items rows by lane — ln.q holds only this lane's indexes, so no two lanes write the same row
		it.Verdict = e.runChain(ln, l, it.Pkt, it.Dir, it.key, start)
		if it.Verdict == netem.Drop {
			ln.drops++
		}
	}
}

// runChain runs pkt through the device chain from index idx (inclusive) in
// dir, mirroring netem.Link.process. Survivors are buffered for delivery.
//
//tspuvet:hotpath
func (e *Engine) runChain(ln *laneState, l int, pkt *packet.Packet, dir netem.Direction, key packet.FlowKey4, idx int) netem.Action {
	step := 1
	if dir == netem.BtoA {
		step = -1
	}
	for ; idx >= 0 && idx < len(e.devices); idx += step {
		if e.devices[idx].HandleSharded(&e.pipes[l][idx], pkt, dir, key, l) == netem.Drop { //tspuvet:allow hotpath: interface wraps a prebuilt per-(lane,device) pipe pointer, no allocation
			return netem.Drop
		}
	}
	if e.deliver != nil {
		//tspuvet:retains lane out-buffer holds passed packets only until the post-batch deliver fan-out in Process
		ln.out = append(ln.out, outPkt{pkt: pkt, dir: dir})
	}
	return netem.Pass
}

// lanePipe implements netem.Pipe for one (lane, device) position. Inject
// continues through the rest of the chain synchronously on the lane worker —
// legal because an injected packet shares the flow's host pair and therefore
// the lane — while After is buffered until the batch barrier, because the
// simulator is not safe to call from lane workers.
//
//tspuvet:laneowned
type lanePipe struct {
	e    *Engine
	lane int32
	idx  int32
}

// Inject mirrors netem.linkPipe.Inject: the packet enters the chain one
// position past this device in its direction of travel. Devices call it
// through the Pipe interface from lane workers, so it is a lane entry point
// in its own right (the receiver carries the lane).
//
//tspuvet:lane
func (p *lanePipe) Inject(pkt *packet.Packet, dir netem.Direction) {
	next := int(p.idx) + 1
	if dir == netem.BtoA {
		next = int(p.idx) - 1
	}
	key := packet.FlowKey4Of(pkt)
	ln := &p.e.lane[p.lane]
	p.e.runChain(ln, int(p.lane), pkt, dir, key, next)
}

func (p *lanePipe) Now() time.Duration { return p.e.sim.Now() }

// After buffers the callback for post-barrier scheduling. The simulator does
// not advance during Process, so flushing after the barrier registers fn at
// the same virtual instant a direct call would have. Like Inject, it runs on
// lane workers via the Pipe interface.
//
//tspuvet:lane
func (p *lanePipe) After(d time.Duration, fn func()) {
	ln := &p.e.lane[p.lane]
	ln.afterD = append(ln.afterD, d)
	ln.afterF = append(ln.afterF, fn)
}

// Advance drains due virtual-clock work — flushed After callbacks, fragment
// timeouts, anything else queued on the simulator — up to deadline, running
// at most max events (max <= 0 removes the bound). It is the engine's seam
// onto sim.RunBatch: interleave Process calls with Advance to let conntrack
// timeouts and fragment queues age between traffic bursts.
func (e *Engine) Advance(deadline time.Duration, max int) int {
	if max <= 0 {
		max = int(^uint(0) >> 1)
	}
	return e.sim.RunBatch(deadline, max)
}
