// Package report renders experiment results as aligned text tables,
// histograms, and contingency matrices — the forms the paper's tables and
// figures take. It is deliberately dependency-free so every experiment's
// output is plain text reproducible in CI logs.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Hist is an integer-bucket histogram rendered with bars.
type Hist struct {
	Title  string
	counts map[int]int
	total  int
}

// NewHist creates an empty histogram.
func NewHist(title string) *Hist {
	return &Hist{Title: title, counts: make(map[int]int)}
}

// Add increments bucket b.
func (h *Hist) Add(b int) {
	h.counts[b]++
	h.total++
}

// AddN increments bucket b by n.
func (h *Hist) AddN(b, n int) {
	h.counts[b] += n
	h.total += n
}

// Count returns the count in bucket b.
func (h *Hist) Count(b int) int { return h.counts[b] }

// Total returns the number of samples.
func (h *Hist) Total() int { return h.total }

// FracAtOrBelow returns the fraction of samples in buckets <= b.
func (h *Hist) FracAtOrBelow(b int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for k, c := range h.counts {
		if k <= b {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// String renders the histogram with proportional bars.
func (h *Hist) String() string {
	var keys []int
	maxC := 1
	for k, c := range h.counts {
		keys = append(keys, k)
		if c > maxC {
			maxC = c
		}
	}
	sort.Ints(keys)
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", h.Title)
	}
	for _, k := range keys {
		c := h.counts[k]
		bar := strings.Repeat("#", 1+c*40/maxC)
		fmt.Fprintf(&b, "%4d | %-41s %d (%.1f%%)\n", k, bar, c, 100*float64(c)/float64(h.total))
	}
	return b.String()
}

// Contingency is a 2x2 contingency matrix with Hamming distance, matching
// Table 5's presentation.
type Contingency struct {
	Title            string
	RowName, ColName string
	// NN, NB, BN, BB: counts by (row, col) where N=negative, B=positive.
	NN, NB, BN, BB int
}

// Add records one observation.
func (c *Contingency) Add(row, col bool) {
	switch {
	case !row && !col:
		c.NN++
	case !row && col:
		c.NB++
	case row && !col:
		c.BN++
	default:
		c.BB++
	}
}

// Total returns the number of observations.
func (c *Contingency) Total() int { return c.NN + c.NB + c.BN + c.BB }

// Hamming returns the fraction of disagreeing observations, the metric
// Table 5 reports.
func (c *Contingency) Hamming() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.NB+c.BN) / float64(t)
}

// String renders the matrix.
func (c *Contingency) String() string {
	t := NewTable(c.Title, "", c.ColName+" (N)", c.ColName+" (B)")
	t.AddRow(c.RowName+" (N)", c.NN, c.NB)
	t.AddRow(c.RowName+" (B)", c.BN, c.BB)
	return t.String() + fmt.Sprintf("Hamming distance: %.4f\n", c.Hamming())
}
