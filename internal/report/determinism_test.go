package report

import "testing"

// Hist stores its buckets in a map; rendering must nevertheless be a pure
// function of the multiset of samples. Two histograms built with reversed
// insertion orders (different internal map layouts, different iteration
// orders) must render byte-for-byte identically.
func TestHistRenderInsertionOrderInvariant(t *testing.T) {
	buckets := []int{9, 1, 4, 4, 7, 0, 2, 9, 9, 3, 5, 5, 5, 8, 6, 2}
	fwd := NewHist("Fig. 12 hop distances")
	for _, b := range buckets {
		fwd.Add(b)
	}
	rev := NewHist("Fig. 12 hop distances")
	for i := len(buckets) - 1; i >= 0; i-- {
		rev.Add(buckets[i])
	}
	a, b := fwd.String(), rev.String()
	if a != b {
		t.Fatalf("Hist render depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	if fwd.FracAtOrBelow(4) != rev.FracAtOrBelow(4) {
		t.Fatal("FracAtOrBelow depends on insertion order")
	}
}

// AddN must land in the same buckets as repeated Add, so scaled insertion
// renders identically too.
func TestHistRenderAddNEquivalence(t *testing.T) {
	one := NewHist("h")
	for i := 0; i < 3; i++ {
		one.Add(2)
	}
	one.Add(5)
	bulk := NewHist("h")
	bulk.AddN(5, 1)
	bulk.AddN(2, 3)
	if one.String() != bulk.String() {
		t.Fatalf("AddN render differs from Add render:\n%s\nvs\n%s", one.String(), bulk.String())
	}
}
