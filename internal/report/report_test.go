package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "Vantage", "SNI-I", "QUIC")
	tb.AddRow("rostelecom", 0.084, "0.02%")
	tb.AddRow("obit", 0.14, "0.00%")
	s := tb.String()
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "rostelecom") {
		t.Fatalf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if tb.NumRows() != 2 {
		t.Fatal("NumRows wrong")
	}
	// Columns aligned: header and rows share the first column width.
	if !strings.HasPrefix(lines[3], "rostelecom") {
		t.Fatalf("alignment broken:\n%s", s)
	}
}

func TestHist(t *testing.T) {
	h := NewHist("hops")
	for i := 0; i < 7; i++ {
		h.Add(1)
	}
	h.AddN(2, 3)
	h.Add(5)
	if h.Total() != 11 || h.Count(1) != 7 {
		t.Fatalf("total=%d count1=%d", h.Total(), h.Count(1))
	}
	got := h.FracAtOrBelow(2)
	if got < 0.90 || got > 0.92 {
		t.Fatalf("FracAtOrBelow(2) = %v", got)
	}
	s := h.String()
	if !strings.Contains(s, "#") || !strings.Contains(s, "hops") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestContingency(t *testing.T) {
	c := &Contingency{Title: "IP vs Echo", RowName: "IP", ColName: "Echo"}
	for i := 0; i < 673; i++ {
		c.Add(false, false)
	}
	for i := 0; i < 12; i++ {
		c.Add(false, true)
	}
	for i := 0; i < 44; i++ {
		c.Add(true, false)
	}
	for i := 0; i < 405; i++ {
		c.Add(true, true)
	}
	if c.Total() != 1134 {
		t.Fatalf("total = %d", c.Total())
	}
	h := c.Hamming()
	if h < 0.049 || h > 0.050 {
		t.Fatalf("hamming = %v, want ~0.0494 (Table 5)", h)
	}
	if !strings.Contains(c.String(), "Hamming") {
		t.Fatal("render missing hamming")
	}
}

func TestEmptyHistAndContingency(t *testing.T) {
	h := NewHist("empty")
	if h.FracAtOrBelow(5) != 0 {
		t.Fatal("empty hist frac")
	}
	c := &Contingency{}
	if c.Hamming() != 0 {
		t.Fatal("empty contingency hamming")
	}
}
