package report_test

import (
	"fmt"

	"tspusim/internal/report"
)

func ExampleTable() {
	t := report.NewTable("demo", "Vantage", "Blocked")
	t.AddRow("rostelecom", 9655)
	t.AddRow("obit", 3943)
	fmt.Print(t.String())
	// Output:
	// == demo ==
	// Vantage     Blocked
	// ----------  -------
	// rostelecom  9655
	// obit        3943
}

func ExampleContingency() {
	c := &report.Contingency{Title: "demo", RowName: "IP", ColName: "Echo"}
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, false)
	c.Add(false, false)
	fmt.Printf("%.2f\n", c.Hamming())
	// Output: 0.25
}
