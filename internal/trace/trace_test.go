package trace

import (
	"net/netip"
	"strings"
	"testing"

	"tspusim/internal/topo"
)

func TestTracerouteToUS(t *testing.T) {
	l := topo.Build(topo.Options{Seed: 2, Endpoints: 100, ASes: 8, TrancoN: 100, RegistryN: 100})
	v := l.Vantages[topo.ERTelecom]
	r := Traceroute(l, v.Stack, l.US1.Addr(), 443, 20)
	if !r.Reached {
		t.Fatalf("traceroute did not reach US: hops=%v", r.Hops)
	}
	// vp - access - agg - core - border - hub - us-router - us1: 7 routers.
	if r.HopCount() < 4 || r.HopCount() > 10 {
		t.Fatalf("hop count = %d", r.HopCount())
	}
	for i, h := range r.Hops {
		if !h.IsValid() {
			t.Fatalf("silent hop at %d: %v", i, r.Hops)
		}
	}
}

func TestTracerouteToEndpoint(t *testing.T) {
	l := topo.Build(topo.Options{Seed: 2, Endpoints: 100, ASes: 8, TrancoN: 100, RegistryN: 100})
	// Pick an endpoint without a device on path so the SYN probe isn't
	// interfered with (plain SYNs pass TSPUs anyway, but keep it clean).
	ep := l.Endpoints[0]
	r := Traceroute(l, l.Paris, ep.Addr, ep.Port, 25)
	if !r.Reached {
		t.Fatalf("traceroute to endpoint failed: %v", r.Hops)
	}
	if r.HopCount() < 4 {
		t.Fatalf("suspiciously short path: %v", r.Hops)
	}
}

func TestLinkFromTrace(t *testing.T) {
	mk := func(s string) netip.Addr { return netip.MustParseAddr(s) }
	r := &Result{
		Dst:     mk("10.20.0.10"),
		Hops:    []netip.Addr{mk("1.1.1.1"), mk("2.2.2.2"), mk("3.3.3.3")},
		Reached: true,
	}
	// hopsFromDst = 1: device on the access link (last hop -> dst).
	l1, ok := LinkFromTrace(r, 1)
	if !ok || l1.Before != mk("3.3.3.3") || l1.After != r.Dst {
		t.Fatalf("link1 = %v ok=%v", l1, ok)
	}
	l2, ok := LinkFromTrace(r, 2)
	if !ok || l2.Before != mk("2.2.2.2") || l2.After != mk("3.3.3.3") {
		t.Fatalf("link2 = %v", l2)
	}
	if _, ok := LinkFromTrace(r, 4); ok {
		t.Fatal("out-of-range hop accepted")
	}
	if _, ok := LinkFromTrace(&Result{}, 1); ok {
		t.Fatal("unreached trace accepted")
	}
}

func TestClusterLeafGrouping(t *testing.T) {
	mk := func(s string) netip.Addr { return netip.MustParseAddr(s) }
	c := NewCluster()
	// Two leaf links sharing a before-hop cluster together.
	c.Add(Link{Before: mk("5.5.5.5"), After: mk("10.0.0.1")}, true)
	c.Add(Link{Before: mk("5.5.5.5"), After: mk("10.0.0.2")}, true)
	// A transit link with distinct after-hop stays separate.
	c.Add(Link{Before: mk("5.5.5.5"), After: mk("6.6.6.6")}, false)
	if c.Unique() != 2 {
		t.Fatalf("unique = %d, want 2", c.Unique())
	}
	if m := c.Members(); m[0] != 2 {
		t.Fatalf("members = %v", m)
	}
}

func TestDOTOutput(t *testing.T) {
	mk := func(s string) netip.Addr { return netip.MustParseAddr(s) }
	r := &Result{
		Dst:     mk("10.0.0.9"),
		Hops:    []netip.Addr{mk("1.1.1.1"), mk("2.2.2.2")},
		Reached: true,
	}
	tspu := map[string]bool{EdgeKey(Link{Before: mk("2.2.2.2"), After: mk("10.0.0.9")}): true}
	dot := DOT([]*Result{r}, tspu)
	if !strings.Contains(dot, "color=red") {
		t.Fatal("TSPU link not marked red")
	}
	if !strings.Contains(dot, `"src" -> "1.1.1.1"`) {
		t.Fatalf("dot missing first edge:\n%s", dot)
	}
}
