// Package trace implements the traceroute machinery of §7: TCP-SYN
// traceroutes over the simulated network, extraction of "TSPU links" (the
// pair of hops bracketing a detected device), clustering of those links, and
// the hop-distance histogram of Fig. 12. It also exports Graphviz DOT for
// Fig. 10/11-style visualizations.
package trace

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/topo"
)

// Result is one traceroute.
type Result struct {
	Dst netip.Addr
	// Hops[i] is the router that answered the TTL=i+1 probe (invalid Addr
	// for silent hops).
	Hops []netip.Addr
	// Reached reports whether the destination answered a full-TTL probe.
	Reached bool
}

// HopCount returns the number of router hops before the destination.
func (r *Result) HopCount() int { return len(r.Hops) }

// Traceroute runs a TCP-SYN traceroute from st to dst:port, probing TTLs
// 1..maxTTL. It drives the lab simulator to completion for each probe, so it
// must run while the sim is otherwise quiescent.
func Traceroute(lab *topo.Lab, st *hostnet.Stack, dst netip.Addr, port uint16, maxTTL int) *Result {
	res := &Result{Dst: dst}
	for ttl := 1; ttl <= maxTTL; ttl++ {
		var hop netip.Addr
		// The probe is a real (TTL-limited) connection attempt so the
		// destination's SYN/ACK or RST marks arrival; ICMP Time Exceeded
		// marks the expiring hop. Probes use fresh ports, and the embedded
		// header in the ICMP error identifies our probe.
		conn := st.Dial(dst, port, hostnet.DialOptions{TTL: uint8(ttl)})
		sport := conn.LocalPort
		st.OnICMP(func(p *packet.Packet) {
			if p.ICMP.Type == packet.ICMPTimeExceed && len(p.ICMP.Payload) >= 24 {
				embSport := uint16(p.ICMP.Payload[20])<<8 | uint16(p.ICMP.Payload[21])
				if embSport == sport {
					hop = p.IP.Src
				}
			}
		})
		lab.Sim.Run()
		reached := len(conn.Packets) > 0
		conn.Close()
		if reached {
			res.Reached = true
			break
		}
		res.Hops = append(res.Hops, hop)
	}
	st.OnICMP(nil)
	return res
}

// Link is a TSPU link: the hops bracketing a detected device.
type Link struct {
	Before, After netip.Addr
}

func (l Link) String() string {
	return fmt.Sprintf("%s=[TSPU]=%s", l.Before, l.After)
}

// LinkFromTrace derives the TSPU link from a traceroute and the device's
// distance from the destination in links (1 = the destination's access
// link). hopsFromDst comes from the TTL-limited fragment localization.
func LinkFromTrace(r *Result, hopsFromDst int) (Link, bool) {
	// The path is: src ... Hops[0..n-1], dst. Link i (1-based from the
	// destination) connects Hops[n-i] to the next element toward dst.
	n := len(r.Hops)
	if !r.Reached || hopsFromDst < 1 || hopsFromDst > n {
		return Link{}, false
	}
	before := r.Hops[n-hopsFromDst]
	var after netip.Addr
	if hopsFromDst == 1 {
		after = r.Dst
	} else {
		after = r.Hops[n-hopsFromDst+1]
	}
	if !before.IsValid() || !after.IsValid() {
		return Link{}, false
	}
	return Link{Before: before, After: after}, true
}

// Cluster groups TSPU links. Links to leaf destinations cluster by the
// before-hop only, mirroring §7.3's method ("for TSPU links that connect
// leaf nodes, we cluster them based only on the IP of the hop before").
type Cluster struct {
	links map[string][]Link
}

// NewCluster creates an empty cluster set.
func NewCluster() *Cluster { return &Cluster{links: make(map[string][]Link)} }

// Add records one link; leaf marks destination-terminated links.
func (c *Cluster) Add(l Link, leaf bool) {
	key := l.Before.String() + ">" + l.After.String()
	if leaf {
		key = l.Before.String() + ">leaf"
	}
	c.links[key] = append(c.links[key], l)
}

// Unique returns the number of distinct TSPU links.
func (c *Cluster) Unique() int { return len(c.links) }

// Members returns the cluster sizes sorted descending.
func (c *Cluster) Members() []int {
	var out []int
	for _, ls := range c.links {
		out = append(out, len(ls))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// DOT renders the traceroute set as a Graphviz graph with TSPU links in red,
// the Fig. 10/11 visualization.
func DOT(results []*Result, tspuLinks map[string]bool) string {
	var b strings.Builder
	b.WriteString("digraph tspu {\n  rankdir=LR;\n  node [shape=point];\n")
	edges := map[string]bool{}
	for _, r := range results {
		prev := "src"
		path := append([]netip.Addr{}, r.Hops...)
		if r.Reached {
			path = append(path, r.Dst)
		}
		for _, h := range path {
			if !h.IsValid() {
				continue
			}
			cur := h.String()
			key := prev + "->" + cur
			if !edges[key] {
				edges[key] = true
				attr := ""
				if tspuLinks[key] {
					attr = " [color=red penwidth=2]"
				}
				fmt.Fprintf(&b, "  %q -> %q%s;\n", prev, cur, attr)
			}
			prev = cur
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// EdgeKey builds the DOT edge key for a TSPU link so callers can mark it.
func EdgeKey(l Link) string { return l.Before.String() + "->" + l.After.String() }
