package circumvent

import (
	"strings"
	"testing"

	"tspusim/internal/hostnet"
	"tspusim/internal/topo"
)

func cvLab(t *testing.T) *topo.Lab {
	t.Helper()
	return topo.Build(topo.Options{Seed: 31, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
}

// expected evasion matrix against a single symmetric device (ER-Telecom).
var expectSymmetric = map[string]map[string]bool{
	"baseline":               {"SNI-I": false, "SNI-II": false, "SNI-I+IV": false},
	"server-small-window":    {"SNI-I": true, "SNI-II": true, "SNI-I+IV": true},
	"server-split-handshake": {"SNI-I": true, "SNI-II": false, "SNI-I+IV": false},
	"server-combined":        {"SNI-I": true, "SNI-II": true, "SNI-I+IV": true},
	"server-wait-timeout":    {"SNI-I": true, "SNI-II": true, "SNI-I+IV": true},
	"client-segmentation":    {"SNI-I": true, "SNI-II": true, "SNI-I+IV": true},
	"client-ip-fragmentation": {
		"SNI-I": true, "SNI-II": true, "SNI-I+IV": true,
	},
	"client-ch-padding":       {"SNI-I": true, "SNI-II": true, "SNI-I+IV": true},
	"client-prepend-record":   {"SNI-I": true, "SNI-II": true, "SNI-I+IV": true},
	"client-ttl-junk":         {"SNI-I": false, "SNI-II": false, "SNI-I+IV": false},
	"client-ech":              {"SNI-I": true, "SNI-II": true, "SNI-I+IV": true},
	"client-sni-case":         {"SNI-I": false, "SNI-II": false, "SNI-I+IV": false},
	"client-sni-trailing-dot": {"SNI-I": false, "SNI-II": false, "SNI-I+IV": false},
}

func TestMatrixAgainstSymmetricDevice(t *testing.T) {
	lab := cvLab(t)
	outcomes := Matrix(lab, topo.ERTelecom, lab.US1)
	for _, o := range outcomes {
		want, known := expectSymmetric[o.Strategy][o.Behavior]
		if !known {
			t.Fatalf("no expectation for %s/%s", o.Strategy, o.Behavior)
		}
		if o.Evaded != want {
			t.Errorf("%s vs %s: evaded=%v, want %v", o.Strategy, o.Behavior, o.Evaded, want)
		}
	}
	if !strings.Contains(Render("matrix", outcomes), "EVADES") {
		t.Fatal("render missing evasions")
	}
}

func TestUpstreamOnlyDefeatsSplitHandshakeForSNI2(t *testing.T) {
	// §8: "sites targeted by SNI-II can still be blocked even with the Split
	// Handshake strategy, due to the existence of an upstream-only TSPU
	// device on the path." OBIT's Paris path has one.
	lab := cvLab(t)
	var split, window Strategy
	for _, s := range Strategies() {
		switch s.Name {
		case "server-split-handshake":
			split = s
		case "server-small-window":
			window = s
		}
	}
	sni2 := Target{"SNI-II", "play.google.com"}

	if Evaluate(lab, topo.OBIT, lab.Paris, split, sni2) {
		t.Fatal("split handshake should NOT evade SNI-II through an upstream-only device")
	}
	// The small-window strategy segments the CH, which no device can parse,
	// so it survives even the upstream-only installation.
	if !Evaluate(lab, topo.OBIT, lab.Paris, window, sni2) {
		t.Fatal("small window should still evade through an upstream-only device")
	}
}

func TestSplitHandshakeEvadesSNI1OnUpstreamOnlyPath(t *testing.T) {
	// SNI-I acts only on downstream traffic, which an upstream-only device
	// never sees, so even the baseline SNI-I evasion still works there.
	lab := cvLab(t)
	var split Strategy
	for _, s := range Strategies() {
		if s.Name == "server-split-handshake" {
			split = s
		}
	}
	if !Evaluate(lab, topo.OBIT, lab.Paris, split, Target{"SNI-I", "dw.com"}) {
		t.Fatal("split handshake should evade SNI-I via OBIT's Paris path")
	}
}

func TestWaitTimeoutRequiresFullSleep(t *testing.T) {
	// A 30s delay (below the 60s SYN-SENT timeout) must NOT evade.
	lab := cvLab(t)
	short := Strategy{
		Name: "server-wait-short", Side: SideServer,
		Listen: func(o *hostnet.ListenOptions) { o.ResponseDelay = 30_000 },
	}
	if Evaluate(lab, topo.ERTelecom, lab.US1, short, Target{"SNI-I", "dw.com"}) {
		t.Fatal("30s delay should not evade the 60s SYN-SENT timeout")
	}
}
