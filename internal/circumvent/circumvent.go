// Package circumvent implements the §8 evasion strategies — server-side
// (reduced window, split handshake, their combination, timeout-wait) and
// client-side (TCP segmentation, IP fragmentation, ClientHello padding and
// record-prepending, and the mitigated TTL-limited insertion) — plus the
// evaluation harness that runs every strategy against every blocking
// behavior, including the upstream-only-device caveat that defeats
// server-side strategies for SNI-II sites.
package circumvent

import (
	"bytes"
	"strings"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
)

// Side classifies where a strategy is deployed.
type Side string

// Deployment sides.
const (
	SideNone   Side = "none"
	SideServer Side = "server"
	SideClient Side = "client"
)

// Strategy is one evasion technique.
type Strategy struct {
	Name  string
	Side  Side
	Notes string
	// Listen mutates the server's options (server-side strategies).
	Listen func(*hostnet.ListenOptions)
	// Dial mutates the client's options (client-side stack changes).
	Dial func(*hostnet.DialOptions)
	// BuildCH overrides the ClientHello bytes (payload-shaping strategies).
	BuildCH func(domain string) []byte
	// SendCH overrides how the ClientHello is transmitted (fragmentation,
	// TTL-limited junk). It must not re-enter the simulator's Run loop.
	SendCH func(lab *topo.Lab, conn *hostnet.TCPConn, ch []byte)
}

// Strategies returns the §8 catalog.
func Strategies() []Strategy {
	return []Strategy{
		{
			Name: "baseline", Side: SideNone,
			Notes: "no evasion (control)",
		},
		{
			Name: "server-small-window", Side: SideServer,
			Notes:  "brdgrd-style: SYN/ACK advertises a small window so the client segments the CH",
			Listen: func(o *hostnet.ListenOptions) { o.Window = 100 },
		},
		{
			Name: "server-split-handshake", Side: SideServer,
			Notes:  "SYN instead of SYN/ACK reverses the TSPU's role inference (works for SNI-I only)",
			Listen: func(o *hostnet.ListenOptions) { o.SplitHandshake = true },
		},
		{
			Name: "server-combined", Side: SideServer,
			Notes: "split handshake plus small window",
			Listen: func(o *hostnet.ListenOptions) {
				o.SplitHandshake = true
				o.Window = 100
			},
		},
		{
			Name: "server-wait-timeout", Side: SideServer,
			Notes:  "respond after the 60s SYN-SENT entry evicts; the flow then looks server-initiated",
			Listen: func(o *hostnet.ListenOptions) { o.ResponseDelay = 61_000 },
		},
		{
			Name: "client-segmentation", Side: SideClient,
			Notes: "small MSS splits the CH across segments; the TSPU does not reassemble streams",
			Dial:  func(o *hostnet.DialOptions) { o.MSS = 64 },
		},
		{
			Name: "client-ip-fragmentation", Side: SideClient,
			Notes: "CH sent as IP fragments; the fragment engine forwards without inspection",
			SendCH: func(lab *topo.Lab, conn *hostnet.TCPConn, ch []byte) {
				p := packet.NewTCP(conn.LocalAddr, conn.RemoteAddr, conn.LocalPort, conn.RemotePort,
					packet.FlagsPSHACK, conn.SndNxt, conn.RcvNxt, ch)
				p.IP.ID = conn.Stack().NextIPID()
				frags, err := packet.Fragment(p, 64)
				if err != nil {
					conn.Send(ch)
					return
				}
				for _, f := range frags {
					conn.Stack().Send(f)
				}
				conn.SndNxt += uint32(len(ch))
			},
		},
		{
			Name: "client-ch-padding", Side: SideClient,
			Notes: "padding extension before the SNI pushes it past the inspection depth",
			BuildCH: func(domain string) []byte {
				return (&tlsx.ClientHelloSpec{
					ServerName: domain,
					ExtraExts:  []tlsx.Extension{{Type: tlsx.ExtensionPadding, Data: make([]byte, 600)}},
				}).Build()
			},
		},
		{
			Name: "client-prepend-record", Side: SideClient,
			Notes: "a leading TLS record hides the CH from a single-record parser",
			BuildCH: func(domain string) []byte {
				return (&tlsx.ClientHelloSpec{ServerName: domain, PrependRecord: true}).Build()
			},
		},
		{
			Name: "client-ech", Side: SideClient,
			Notes: "encrypted ClientHello: no plaintext SNI exists to match (ESNI/ECH, cited via [40])",
			BuildCH: func(domain string) []byte {
				return (&tlsx.ClientHelloSpec{ServerName: domain, ECH: true}).Build()
			},
		},
		{
			Name: "client-sni-case", Side: SideClient,
			Notes: "mixed-case SNI — FAILS: the TSPU's matcher is case-insensitive",
			BuildCH: func(domain string) []byte {
				return (&tlsx.ClientHelloSpec{ServerName: strings.ToUpper(domain)}).Build()
			},
		},
		{
			Name: "client-sni-trailing-dot", Side: SideClient,
			Notes: "FQDN trailing dot — FAILS: the matcher canonicalizes names",
			BuildCH: func(domain string) []byte {
				return (&tlsx.ClientHelloSpec{ServerName: domain + "."}).Build()
			},
		},
		{
			Name: "client-ttl-junk", Side: SideClient,
			Notes: "TTL-limited garbage before the CH — mitigated: inspection now covers later packets",
			SendCH: func(lab *topo.Lab, conn *hostnet.TCPConn, ch []byte) {
				junk := packet.NewTCP(conn.LocalAddr, conn.RemoteAddr, conn.LocalPort, conn.RemotePort,
					packet.FlagsPSHACK, conn.SndNxt, conn.RcvNxt, bytes.Repeat([]byte{0x41}, 64))
				junk.IP.TTL = 3 // past the device, short of the server
				junk.IP.ID = conn.Stack().NextIPID()
				// Send order is preserved by the event queue; no need to
				// drain between the junk and the CH (and this callback runs
				// inside the simulator, so it must not re-enter Run).
				conn.Stack().Send(junk)
				conn.Send(ch)
			},
		},
	}
}

// Target selects which blocking behavior a trial exercises.
type Target struct {
	Label  string
	Domain string
}

// Targets returns the behavior columns of the evaluation matrix.
func Targets() []Target {
	return []Target{
		{"SNI-I", "dw.com"},
		{"SNI-II", "play.google.com"},
		{"SNI-I+IV", "twitter.com"},
	}
}

// Outcome is one (strategy, behavior) evaluation.
type Outcome struct {
	Strategy string
	Side     Side
	Behavior string
	Evaded   bool
	Notes    string
}

// Evaluate runs one strategy against one target from a vantage to a server
// stack; evaded means the CH reached the server, the response reached the
// client un-RST, and ten follow-up requests all arrived (so SNI-II's
// few-packet grace period does not count as success).
func Evaluate(lab *topo.Lab, vantage string, server *hostnet.Stack, strat Strategy, target Target) bool {
	v := lab.Vantages[vantage]

	opts := hostnet.ListenOptions{}
	serverGotCH := false
	opts.OnData = func(c *hostnet.TCPConn, d []byte) {
		if !serverGotCH {
			serverGotCH = true
			c.Send([]byte("SERVERHELLO-RESPONSE"))
		}
	}
	if strat.Listen != nil {
		strat.Listen(&opts)
	}
	listener := server.Listen(443, opts)

	dialOpts := hostnet.DialOptions{}
	if strat.Dial != nil {
		strat.Dial(&dialOpts)
	}
	ch := RealisticCH(target.Domain)
	if strat.BuildCH != nil {
		ch = strat.BuildCH(target.Domain)
	}

	conn := v.Stack.Dial(server.Addr(), 443, dialOpts)
	conn.OnEstablished = func() {
		if strat.SendCH != nil {
			strat.SendCH(lab, conn, ch)
		} else {
			conn.Send(ch)
		}
	}
	lab.Sim.Run()

	clientGotResp := bytes.Contains(conn.Received, []byte("SERVERHELLO"))

	// Follow-up probes: sustained usability check.
	if conn.State == hostnet.StateEstablished {
		for i := 0; i < 10; i++ {
			conn.SendRaw(packet.FlagsPSHACK, []byte("GET /resource"))
			lab.Sim.Run()
		}
	}
	followUps := 0
	for _, sc := range listener.Conns {
		if sc.RemotePort == conn.LocalPort {
			data := string(sc.Received)
			followUps = bytes.Count([]byte(data), []byte("GET /resource"))
		}
	}
	evaded := serverGotCH && clientGotResp && !conn.ResetSeen && followUps == 10
	conn.Close()
	return evaded
}

// RealisticCH builds a browser-sized ClientHello (~330 bytes, ALPN plus a
// trailing padding extension). Size matters: the brdgrd small-window
// strategy only works because real ClientHellos exceed the advertised
// window and must be segmented; the arms-race harness reuses it as the
// default trigger payload so discovered strategies face the same stimulus.
func RealisticCH(domain string) []byte {
	return (&tlsx.ClientHelloSpec{
		ServerName: domain,
		ALPN:       []string{"h2", "http/1.1"},
		SessionID:  make([]byte, 32),
		PaddingLen: 200,
	}).Build()
}

// Matrix evaluates every strategy against every target from the given
// vantage toward the given server.
func Matrix(lab *topo.Lab, vantage string, server *hostnet.Stack) []Outcome {
	var out []Outcome
	for _, s := range Strategies() {
		for _, t := range Targets() {
			out = append(out, Outcome{
				Strategy: s.Name,
				Side:     s.Side,
				Behavior: t.Label,
				Evaded:   Evaluate(lab, vantage, server, s, t),
				Notes:    s.Notes,
			})
		}
	}
	return out
}

// Render prints a strategy x behavior matrix.
func Render(title string, outcomes []Outcome) string {
	targets := Targets()
	headers := []string{"Strategy", "Side"}
	for _, t := range targets {
		headers = append(headers, t.Label)
	}
	tb := report.NewTable(title, headers...)
	byStrategy := map[string][]Outcome{}
	var order []string
	for _, o := range outcomes {
		if _, seen := byStrategy[o.Strategy]; !seen {
			order = append(order, o.Strategy)
		}
		byStrategy[o.Strategy] = append(byStrategy[o.Strategy], o)
	}
	for _, name := range order {
		row := []any{name, string(byStrategy[name][0].Side)}
		for _, t := range targets {
			cell := "blocked"
			for _, o := range byStrategy[name] {
				if o.Behavior == t.Label && o.Evaded {
					cell = "EVADES"
				}
			}
			row = append(row, cell)
		}
		tb.AddRow(row...)
	}
	return tb.String()
}
