package measure

import (
	"fmt"
	"strings"

	"tspusim/internal/packet"
	"tspusim/internal/topo"
)

// LocalizeResult is the §7.1 TTL-limited localization: the device sits
// between hop (TriggerTTL-1) and hop TriggerTTL.
type LocalizeResult struct {
	Vantage string
	// TriggerTTL is the smallest trigger TTL that induces blocking; 0 if
	// none found.
	TriggerTTL int
}

// TTLLocalize finds the first symmetric TSPU on a vantage's outbound path by
// sending a full-TTL control handshake and TTL-limited triggers.
func TTLLocalize(lab *topo.Lab, vantage string, maxTTL int) LocalizeResult {
	v := vantageOf(lab, vantage)
	res := LocalizeResult{Vantage: vantage}
	for ttl := 1; ttl <= maxTTL; ttl++ {
		blocked := false
		// Retry to absorb trigger-miss noise.
		for attempt := 0; attempt < 3 && !blocked; attempt++ {
			f := NewFlow(lab, v.Stack, lab.US1, 443)
			// Control packets at full TTL establish the state.
			f.L(packet.FlagSYN, nil)
			f.R(packet.FlagsSYNACK, nil)
			f.L(packet.FlagACK, nil)
			// TTL-limited trigger.
			f.LTTL(uint8(ttl), packet.FlagsPSHACK, CH(DomainSNI1))
			// Downstream probe reveals whether SNI-I latched.
			f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
			blocked = f.LastLocalRST()
			f.Close()
		}
		if blocked {
			res.TriggerTTL = ttl
			return res
		}
	}
	return res
}

// Render prints the localization result.
func (r LocalizeResult) Render() string {
	if r.TriggerTTL == 0 {
		return fmt.Sprintf("%s: no TSPU found on path\n", r.Vantage)
	}
	return fmt.Sprintf("%s: TSPU between hop %d and hop %d (paper: within first three hops)\n",
		r.Vantage, r.TriggerTTL-1, r.TriggerTTL)
}

// PartialVisibilityResult is the Fig. 8 (left) experiment: upstream-only
// TSPU devices found by reversing client/server roles.
type PartialVisibilityResult struct {
	Vantage string
	// UpstreamOnlyTTLs lists trigger TTLs at which an upstream-only device
	// blocked a remotely-initiated flow (each corresponds to a device link).
	UpstreamOnlyTTLs []int
}

// PartialVisibility detects upstream-only TSPU installations on a vantage's
// path. The US peer initiates (so symmetric devices see a remote-originated
// flow and stay exempt); the RU side then sends a TTL-limited SNI-II
// ClientHello toward the peer's port 443. A device that never saw the US SYN
// treats the RU-sent SYN/ACK as the flow opener and fires on the CH.
func PartialVisibility(lab *topo.Lab, vantage string, maxTTL int) PartialVisibilityResult {
	v := vantageOf(lab, vantage)
	res := PartialVisibilityResult{Vantage: vantage}
	for ttl := 1; ttl <= maxTTL; ttl++ {
		blocked := false
		for attempt := 0; attempt < 3 && !blocked; attempt++ {
			// Remote initiates from port 443 (so the RU-side CH is destined
			// to 443); flow is remote-originated.
			lport := v.Stack.EphemeralPort()
			f := &flowRemoteFirst{lab: lab, v: v, lport: lport}
			blocked = f.run(ttl)
		}
		if blocked {
			// Report only the first device: once its blocking latches, every
			// larger TTL is blocked too, and devices further down the path
			// are unobservable — the paper notes the same limitation
			// (§7.1.1).
			res.UpstreamOnlyTTLs = append(res.UpstreamOnlyTTLs, ttl)
			break
		}
	}
	return res
}

// flowRemoteFirst scripts the Fig. 8 (left) exchange.
type flowRemoteFirst struct {
	lab   *topo.Lab
	v     *topo.Vantage
	lport uint16
}

func (f *flowRemoteFirst) run(ttl int) bool {
	lab, v := f.lab, f.v
	us := lab.US1
	received := 0
	us.RawBind(443, func(p *packet.Packet) {
		if p.TCP.SrcPort == f.lport {
			received++
		}
	})
	defer us.RawUnbind(443)
	v.Stack.RawBind(f.lport, func(p *packet.Packet) {})
	defer v.Stack.RawUnbind(f.lport)

	// US -> RU SYN (seen only by devices with downstream visibility).
	us.SendTCP(v.Stack.Addr(), 443, f.lport, packet.FlagSYN, 9000, 0, nil)
	lab.Sim.Run()
	// RU completes with SYN/ACK (crosses every upstream device).
	v.Stack.SendTCP(us.Addr(), f.lport, 443, packet.FlagsSYNACK, 100, 9001, nil)
	lab.Sim.Run()
	// TTL-limited SNI-II ClientHello.
	ch := packet.NewTCP(v.Stack.Addr(), us.Addr(), f.lport, 443, packet.FlagsPSHACK, 101, 9001, CH(DomainSNI2))
	ch.IP.TTL = uint8(ttl)
	ch.IP.ID = v.Stack.NextIPID()
	v.Stack.Send(ch)
	lab.Sim.Run()
	// Markers: if an upstream-only device latched SNI-II, they get dropped
	// after the allowance.
	before := received
	for i := 0; i < 12; i++ {
		v.Stack.SendTCP(us.Addr(), f.lport, 443, packet.FlagsPSHACK, 200+uint32(i), 9001, []byte("marker"))
		lab.Sim.Run()
	}
	return received-before < 12
}

// Render prints the partial-visibility result.
func (r PartialVisibilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 8 (left): upstream-only TSPU devices from %s ==\n", r.Vantage)
	if len(r.UpstreamOnlyTTLs) == 0 {
		b.WriteString("none detected\n")
		return b.String()
	}
	for _, ttl := range r.UpstreamOnlyTTLs {
		fmt.Fprintf(&b, "upstream-only device between hop %d and %d\n", ttl-1, ttl)
	}
	return b.String()
}
