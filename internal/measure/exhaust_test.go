package measure

import (
	"strings"
	"testing"

	"tspusim/internal/topo"
)

// TestStateExhaustion pins the §8 provisioning table: the SNI-I hold must
// survive the flood at every bound comfortably above the flood size and be
// evicted (with pressure evictions recorded) at the under-provisioned ones.
func TestStateExhaustion(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 41, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := StateExhaustion(lab)
	want := []struct {
		maxFlows  int
		survived  bool
		evictions bool // whether pressure evictions must have occurred
	}{
		{0, true, false},
		{100000, true, false},
		{10000, true, false},
		{1000, false, true},
		{256, false, true},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		got := res.Rows[i]
		if got.MaxFlows != w.maxFlows {
			t.Errorf("row %d: MaxFlows = %d, want %d", i, got.MaxFlows, w.maxFlows)
		}
		if got.Survived != w.survived {
			t.Errorf("bound %d: Survived = %v, want %v", w.maxFlows, got.Survived, w.survived)
		}
		if (got.Evictions > 0) != w.evictions {
			t.Errorf("bound %d: Evictions = %d, want evictions=%v", w.maxFlows, got.Evictions, w.evictions)
		}
	}
	out := res.Render()
	for _, s := range []string{"State exhaustion", "unlimited", "under-provisioned"} {
		if !strings.Contains(out, s) {
			t.Errorf("Render() missing %q:\n%s", s, out)
		}
	}
}
