package measure

import (
	"strings"
	"testing"
)

// The matrix is the product the crosscensor experiment ships; these tests pin
// the properties the golden file alone cannot express: every censor pair must
// stay distinguishable, and the specific cells that distinguish them are
// behavioral claims with citations — a refactor that collapses two columns
// must fail loudly here, not just shift golden bytes.

func TestCrossCensorDeterministic(t *testing.T) {
	a := CrossCensor(1).Render()
	b := CrossCensor(1).Render()
	if a != b {
		t.Fatal("CrossCensor output differs between identical runs")
	}
	// The matrix is a pure function of the model tables; the seed only feeds
	// the TSPU's (unused, zero-failure-rate) rand stream.
	c := CrossCensor(99).Render()
	if a != c {
		t.Fatal("CrossCensor output depends on the seed; the battery must be behavior-only")
	}
}

func TestCrossCensorShape(t *testing.T) {
	mx := CrossCensor(1)
	if len(mx.Models) < 4 {
		t.Fatalf("matrix has %d censor models, want >= 4", len(mx.Models))
	}
	families := map[string]bool{}
	for _, p := range mx.Probes {
		families[p.Family] = true
	}
	if len(families) < 5 {
		t.Fatalf("matrix has %d probe families, want >= 5", len(families))
	}
	if len(mx.Cells) != len(mx.Probes) {
		t.Fatalf("matrix has %d rows for %d probes", len(mx.Cells), len(mx.Probes))
	}
	for i, row := range mx.Cells {
		if len(row) != len(mx.Models) {
			t.Fatalf("probe %s has %d cells for %d models", mx.Probes[i].ID(), len(row), len(mx.Models))
		}
		for j, cell := range row {
			if cell == "" {
				t.Errorf("empty cell at %s × %s", mx.Probes[i].ID(), mx.Models[j].Name)
			}
		}
	}
	for _, m := range mx.Models {
		if m.Cite == "" {
			t.Errorf("model %s has no citation", m.Name)
		}
	}
}

func TestCrossCensorAllFingerprintsDistinct(t *testing.T) {
	mx := CrossCensor(1)
	if got, want := mx.DistinctFingerprints(), len(mx.Models); got != want {
		byFP := map[string][]string{}
		for _, m := range mx.Models {
			fp := mx.Fingerprint(m.Name)
			byFP[fp] = append(byFP[fp], m.Name)
		}
		for _, names := range byFP {
			if len(names) > 1 {
				t.Errorf("censors %v share an identical fingerprint — the battery can no longer tell them apart", names)
			}
		}
		t.Fatalf("distinct fingerprints = %d, want %d", got, want)
	}
}

// pairDiffs pins, for every censor pair, at least three probe cells that must
// differ. Each list is the pair's discriminating surface: if any pinned cell
// pair becomes equal, two models drifted toward each other.
var pairDiffs = []struct {
	a, b   string
	probes []string
}{
	{"tspu", "ispdpi-keyword", []string{"state/remote-first-flow", "state/conntrack-occupancy", "frag/syn-queue-limit", "residual/reused-port", "tls/blocked-sni", "quic/blocked-initial"}},
	{"tspu", "tm", []string{"localize/http-ttl-ladder", "state/remote-first-flow", "dns/blocked-query", "dns/reverse-query", "residual/reused-port", "tls/blocked-sni"}},
	{"tspu", "in-airtel", []string{"localize/tls-ttl-ladder", "localize/http-ttl-ladder", "http/blocked-host", "residual/reused-port", "quic/blocked-initial"}},
	{"tspu", "in-jio", []string{"localize/http-ttl-ladder", "state/remote-first-flow", "http/blocked-host", "tls/blocked-sni", "residual/reused-port"}},
	{"tspu", "in-mtnl", []string{"localize/tls-ttl-ladder", "dns/blocked-query", "http/blocked-host", "residual/reused-port", "quic/blocked-initial"}},
	{"ispdpi-keyword", "tm", []string{"localize/tls-ttl-ladder", "state/server-side-clienthello", "dns/blocked-query", "dns/reverse-query", "tls/blocked-sni"}},
	{"ispdpi-keyword", "in-airtel", []string{"localize/tls-ttl-ladder", "state/remote-first-flow", "http/blocked-host", "tls/blocked-sni", "list/divergent-hosts"}},
	{"ispdpi-keyword", "in-jio", []string{"localize/tls-ttl-ladder", "state/server-side-clienthello", "http/blocked-host", "tls/blocked-sni", "list/divergent-hosts"}},
	{"ispdpi-keyword", "in-mtnl", []string{"localize/tls-ttl-ladder", "dns/blocked-query", "http/blocked-host", "list/divergent-hosts"}},
	{"tm", "in-airtel", []string{"state/remote-first-flow", "state/server-side-clienthello", "dns/reverse-query", "tls/blocked-sni", "http/blocked-host"}},
	{"tm", "in-jio", []string{"state/server-side-clienthello", "dns/blocked-query", "dns/reverse-query", "list/divergent-hosts"}},
	{"tm", "in-mtnl", []string{"state/server-side-clienthello", "dns/blocked-query", "dns/reverse-query", "http/blocked-host"}},
	{"in-airtel", "in-jio", []string{"localize/tls-ttl-ladder", "state/remote-first-flow", "http/blocked-host", "tls/blocked-sni", "list/divergent-hosts"}},
	{"in-airtel", "in-mtnl", []string{"dns/blocked-query", "http/blocked-host", "list/divergent-hosts"}},
	{"in-jio", "in-mtnl", []string{"localize/tls-ttl-ladder", "dns/blocked-query", "http/blocked-host", "tls/blocked-sni", "list/divergent-hosts"}},
}

func TestCrossCensorPairDifferences(t *testing.T) {
	mx := CrossCensor(1)
	seen := map[string]bool{}
	for _, pd := range pairDiffs {
		seen[pd.a+"|"+pd.b] = true
		if len(pd.probes) < 3 {
			t.Errorf("pair %s/%s pins only %d differing cells, want >= 3", pd.a, pd.b, len(pd.probes))
		}
		for _, probe := range pd.probes {
			ca, cb := mx.Cell(probe, pd.a), mx.Cell(probe, pd.b)
			if ca == cb {
				t.Errorf("pair %s/%s: probe %s no longer discriminates (both %q)", pd.a, pd.b, probe, ca)
			}
		}
	}
	// Every pair of models must be covered.
	for i, a := range mx.Models {
		for _, b := range mx.Models[i+1:] {
			if !seen[a.Name+"|"+b.Name] && !seen[b.Name+"|"+a.Name] {
				t.Errorf("censor pair %s/%s has no pinned differential cells", a.Name, b.Name)
			}
		}
	}
}

// TestCrossCensorPinnedCells locks the single most characteristic cell per
// model — the one the source paper leads with.
func TestCrossCensorPinnedCells(t *testing.T) {
	mx := CrossCensor(1)
	for _, tc := range []struct {
		probe, model, want string
	}{
		// TSPU §3: residual per-flow blocking is the methodology anchor.
		{"residual/reused-port", "tspu", "blocked (per-flow state persists)"},
		{"residual/after-expiry", "tspu", "blocked, then clean after 80s (hold expired)"},
		// TSPU §7.2: the 45-fragment queue fingerprint.
		{"frag/syn-queue-limit", "tspu", "45 answered, 46 dropped (45-fragment queue limit)"},
		// TM §3.1: measurable from outside because inspection is bidirectional.
		{"dns/reverse-query", "tm", "forged answer injected (bidirectional inspection)"},
		// TM §4.1: forged answers race the resolver, they don't replace it.
		{"dns/blocked-query", "tm", "forged answer injected (races the legit reply)"},
		// IN §6.3: the blockpage carries the ISP's attribution mark.
		{"http/blocked-host", "in-airtel", "blockpage injected [censor-id: airtel]"},
		{"http/blocked-host", "in-mtnl", "blockpage injected [censor-id: mtnl]"},
		// IN §6.2: Jio was the SNI-triggered RST-only ISP.
		{"http/blocked-host", "in-jio", "rst injected, no page"},
		// IN §4.3: each ISP enforces its own list snapshot.
		{"list/divergent-hosts", "in-airtel", "blocked: vimeo.com"},
		{"list/divergent-hosts", "in-jio", "blocked: telegram.org"},
		{"list/divergent-hosts", "in-mtnl", "blocked: archive.org"},
		// Pre-TSPU ISP DPI rewrites in flight rather than responding.
		{"tls/blocked-sni", "ispdpi-keyword", "trigger rewritten to rst in flight"},
		// TSPU §5.2 role confusion: remotely-originated flows are exempt.
		{"state/remote-first-flow", "tspu", "no interference"},
	} {
		if got := mx.Cell(tc.probe, tc.model); got != tc.want {
			t.Errorf("cell %s × %s = %q, want %q", tc.probe, tc.model, got, tc.want)
		}
	}
}

// TestCrossCensorControlColumn: nobody may interfere with the control host —
// overblocking in any model would silently poison every differential cell.
func TestCrossCensorControlColumn(t *testing.T) {
	mx := CrossCensor(1)
	for _, m := range mx.Models {
		if got := mx.Cell("http/control-host", m.Name); got != "origin page served" {
			t.Errorf("model %s interferes with the control host: %q", m.Name, got)
		}
	}
}

func TestCrossCensorRenderSummary(t *testing.T) {
	out := CrossCensor(1).Render()
	for _, want := range []string{
		"distinct fingerprints: 6/6",
		"arXiv:2304.04835",
		"arXiv:1808.01708",
		"stimulus domain: " + CrossBlockedDomain,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered matrix missing %q", want)
		}
	}
}
