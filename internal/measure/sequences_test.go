package measure

import (
	"testing"
	"time"

	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

func seqLab(t *testing.T) *topo.Lab {
	t.Helper()
	return topo.Build(topo.Options{Seed: 4, Endpoints: 60, ASes: 6, TrancoN: 100, RegistryN: 100})
}

func TestClassifyNormalHandshake(t *testing.T) {
	lab := seqLab(t)
	v := ClassifySequence(lab, topo.ERTelecom, []Op{Ls, Rsa, La})
	if !v.SNI1Acts {
		t.Fatal("normal handshake should be a valid SNI-I prefix")
	}
	if !v.TriggerDelivered {
		t.Fatal("SNI-I trigger should be delivered")
	}
	if v.Green() {
		t.Fatal("normal handshake is not green")
	}
}

func TestClassifyRemoteFirstExempt(t *testing.T) {
	lab := seqLab(t)
	for _, seq := range [][]Op{{Rs}, {Rs, Ls}, {Rsa}, {Ra}, {Rs, Ls, Rsa}} {
		v := ClassifySequence(lab, topo.ERTelecom, seq)
		if v.SNI1Acts || v.SNI4Acts {
			t.Fatalf("remote-first %s triggered blocking", SeqString(seq))
		}
	}
}

func TestClassifySplitHandshakeGreen(t *testing.T) {
	lab := seqLab(t)
	v := ClassifySequence(lab, topo.ERTelecom, []Op{Ls, Rs, Lsa})
	if v.SNI1Acts {
		t.Fatal("split handshake should evade SNI-I")
	}
	if !v.SNI4Acts {
		t.Fatal("split handshake should hit the SNI-IV backup")
	}
	if !v.Green() {
		t.Fatal("expected green verdict")
	}
}

func TestExploreSequencesShape(t *testing.T) {
	lab := seqLab(t)
	res := ExploreSequences(lab, topo.ERTelecom, 2)
	total, valid, green, remoteFirst := res.Stats()
	if total != 1+6+36 {
		t.Fatalf("total = %d", total)
	}
	if remoteFirst != 0 {
		t.Fatalf("remote-first valid prefixes = %d, paper says 0", remoteFirst)
	}
	if valid == 0 || green == 0 {
		t.Fatalf("valid=%d green=%d", valid, green)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestTable2Timeouts(t *testing.T) {
	lab := seqLab(t)
	rows := Table2(lab)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string]time.Duration{
		"SYN_SENT":    60 * time.Second,
		"SYN_RCVD":    105 * time.Second,
		"ESTABLISHED": 480 * time.Second,
		"SNI-I":       75 * time.Second,
		"SNI-II":      420 * time.Second,
		"SNI-IV":      40 * time.Second,
		"QUIC":        420 * time.Second,
	}
	for _, r := range rows {
		if !r.Found {
			t.Fatalf("%s: no timeout found", r.Label)
		}
		expect := want[r.State]
		diff := r.Timeout - expect
		if diff < 0 {
			diff = -diff
		}
		if diff > 2*time.Second {
			t.Errorf("%s (%s): measured %v, device configured %v", r.Label, r.State, r.Timeout, expect)
		}
	}
	if RenderTable2(rows) == "" {
		t.Fatal("render empty")
	}
}

func TestTable8Actions(t *testing.T) {
	lab := seqLab(t)
	rows := Table8(lab)
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	matches := 0
	for _, r := range rows {
		if r.Action == r.PaperAct {
			matches++
		} else {
			t.Logf("action mismatch on %s: measured %s, paper %s", r.Seq, r.Action, r.PaperAct)
		}
	}
	// The conntrack model is built to match all 16 PASS/DROP verdicts.
	if matches < 15 {
		t.Fatalf("only %d/16 actions match the paper", matches)
	}
	if RenderTable8(rows) == "" {
		t.Fatal("render empty")
	}
}

func TestReliabilitySmall(t *testing.T) {
	lab := seqLab(t)
	res := Reliability(lab, 150)
	for _, name := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
		for _, typ := range ReliabilityTypes {
			f, ok := res.Failures[name][typ]
			if !ok {
				t.Fatalf("missing cell %s/%v", name, typ)
			}
			if f < 0 || f > 0.2 {
				t.Fatalf("%s/%v failure rate = %v, expected small", name, typ, f)
			}
		}
	}
	// ER-Telecom must be the least reliable for SNI-II/SNI-IV/QUIC in
	// expectation; with 150 trials just assert its QUIC rate can exceed 0
	// while OBIT's stays 0 (OBIT's device has rate 0 configured).
	if res.Failures[topo.OBIT][tspu.QUICBlock] != 0 {
		t.Fatalf("OBIT QUIC failures = %v, configured 0", res.Failures[topo.OBIT][tspu.QUICBlock])
	}
	if res.Render() == "" {
		t.Fatal("render empty")
	}
}

func TestReliabilityConcurrencyInvariance(t *testing.T) {
	// Per-flow state means batched trials measure the same failure rate as
	// sequential ones (§5.2.1's concurrency check).
	lab := seqLab(t)
	seq := ReliabilityConcurrent(lab, topo.ERTelecom, 200, 1)
	batched := ReliabilityConcurrent(lab, topo.ERTelecom, 200, 25)
	// ER-Telecom's SNI-I rate is configured 0: both must be 0 exactly.
	if seq != 0 || batched != 0 {
		t.Fatalf("seq=%v batched=%v, want 0 for ER-Telecom SNI-I", seq, batched)
	}
	// Rostelecom has a non-zero rate; batched and sequential must agree
	// within sampling noise.
	seqRT := ReliabilityConcurrent(lab, topo.Rostelecom, 400, 1)
	batchedRT := ReliabilityConcurrent(lab, topo.Rostelecom, 400, 40)
	diff := seqRT - batchedRT
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Fatalf("concurrency changed the failure rate: %v vs %v", seqRT, batchedRT)
	}
}
