// Package measure implements the paper's measurement experiments against a
// topo.Lab: trigger reliability (Table 1), TCP-sequence exploration and
// state-timeout inference (Fig. 4, Fig. 5, Tables 2 and 8), local and remote
// localization (§7.1, Fig. 8), Quack-style echo measurements and the Tor-IP
// correlation (Table 4, Table 5), the fragmentation fingerprint scan and hop
// localization (Fig. 9, Fig. 12), the domain survey (Fig. 6, Fig. 7,
// Table 3), and the ClientHello/QUIC fingerprint fuzzing maps (Fig. 13,
// Fig. 14).
//
// Every experiment is a pure function of the Lab plus explicit parameters
// and returns a typed result with a text rendering, so the harness can
// regenerate each table and figure independently.
package measure

import (
	"net/netip"
	"sync"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
)

// Canonical trigger domains, chosen from the paper's own examples so each
// exercises exactly one behavior class (Table 3).
const (
	// DomainSNI1 is targeted by SNI-I only.
	DomainSNI1 = "dw.com"
	// DomainSNI2 is "out-registry" SNI-II.
	DomainSNI2 = "play.google.com"
	// DomainSNI14 is targeted by both SNI-I and the SNI-IV backup.
	DomainSNI14 = "twitter.com"
	// DomainThrottle was throttled Feb 26 - Mar 4 2022.
	DomainThrottle = "fbcdn.net"
	// DomainControl triggers nothing.
	DomainControl = "example-control.org"
)

// chCache memoizes built default-spec ClientHellos per domain. Experiments
// build the same handful of trigger hellos tens of thousands of times per
// lab, and tlsx assembly was a visible slice of fleet allocation profiles.
// sync.Map because fleet workers call CH concurrently.
var chCache sync.Map // string -> []byte (never mutated after store)

// CH builds a ClientHello payload for a domain. The returned slice is a
// private copy — callers may hand it to packet constructors or split it for
// fragmentation without aliasing other trials.
func CH(domain string) []byte {
	v, ok := chCache.Load(domain)
	if !ok {
		v, _ = chCache.LoadOrStore(domain, (&tlsx.ClientHelloSpec{ServerName: domain}).Build())
	}
	cached := v.([]byte)
	out := make([]byte, len(cached))
	copy(out, cached)
	return out
}

// Flow scripts raw TCP packets between a local stack and a remote stack with
// full control over flags, exactly like the scapy-style scripting behind
// §5.3. Both ends are raw-bound: neither stack applies any TCP processing.
// The flow is censor-agnostic: it only needs the simulator driving the two
// stacks, so the same scripting runs against a full Lab or the minimal
// cross-censor testbed.
type Flow struct {
	sim    *sim.Sim
	Local  *hostnet.Stack
	Remote *hostnet.Stack
	LPort  uint16
	RPort  uint16

	lseq, rseq uint32
	// LocalGot and RemoteGot record packets received at each raw port.
	LocalGot  []*packet.Packet
	RemoteGot []*packet.Packet
}

// NewFlow opens a scripted flow local:ephemeral <-> remote:rport.
func NewFlow(lab *topo.Lab, local, remote *hostnet.Stack, rport uint16) *Flow {
	return NewFlowOn(lab.Sim, local, remote, rport)
}

// NewFlowOn is NewFlow against any simulator — the entry point the
// cross-censor battery uses, where there is no Lab.
func NewFlowOn(s *sim.Sim, local, remote *hostnet.Stack, rport uint16) *Flow {
	f := &Flow{
		sim: s, Local: local, Remote: remote,
		LPort: local.EphemeralPort(), RPort: rport,
		lseq: 1000, rseq: 5000,
	}
	local.RawBind(f.LPort, func(p *packet.Packet) { f.LocalGot = append(f.LocalGot, p) })
	remote.RawBind(f.RPort, func(p *packet.Packet) {
		if p.TCP.SrcPort == f.LPort {
			f.RemoteGot = append(f.RemoteGot, p)
		}
	})
	return f
}

// Close releases the raw bindings.
func (f *Flow) Close() {
	f.Local.RawUnbind(f.LPort)
	f.Remote.RawUnbind(f.RPort)
}

// L sends a local→remote packet with the given flags and payload, then
// drains the simulator.
func (f *Flow) L(flags packet.TCPFlags, payload []byte) {
	f.LTTL(0, flags, payload)
}

// LTTL is L with an explicit TTL (0 = default 64).
func (f *Flow) LTTL(ttl uint8, flags packet.TCPFlags, payload []byte) {
	p := packet.NewTCP(f.Local.Addr(), f.Remote.Addr(), f.LPort, f.RPort, flags, f.lseq, f.rseq, payload)
	if ttl != 0 {
		p.IP.TTL = ttl
	}
	p.IP.ID = f.Local.NextIPID()
	f.Local.Send(p)
	f.bump(&f.lseq, flags, payload)
	f.sim.Run()
}

// R sends a remote→local packet.
func (f *Flow) R(flags packet.TCPFlags, payload []byte) {
	p := packet.NewTCP(f.Remote.Addr(), f.Local.Addr(), f.RPort, f.LPort, flags, f.rseq, f.lseq, payload)
	p.IP.ID = f.Remote.NextIPID()
	f.Remote.Send(p)
	f.bump(&f.rseq, flags, payload)
	f.sim.Run()
}

func (f *Flow) bump(seq *uint32, flags packet.TCPFlags, payload []byte) {
	if flags.Has(packet.FlagSYN) || flags.Has(packet.FlagFIN) {
		*seq++
	}
	*seq += uint32(len(payload))
}

// Sleep advances virtual time.
func (f *Flow) Sleep(d time.Duration) {
	f.sim.RunUntil(f.sim.Now() + d)
}

// LastLocalRST reports whether the most recent local arrival was an RST.
func (f *Flow) LastLocalRST() bool {
	if len(f.LocalGot) == 0 {
		return false
	}
	return f.LocalGot[len(f.LocalGot)-1].TCP.Flags.Has(packet.FlagRST)
}

// remoteDataCount counts remote arrivals carrying payload.
func (f *Flow) remoteDataCount() int {
	n := 0
	for _, p := range f.RemoteGot {
		if len(p.TCP.Payload) > 0 {
			n++
		}
	}
	return n
}

// vantageOf resolves a vantage by name, panicking on typos — experiment code
// passes constants.
func vantageOf(lab *topo.Lab, name string) *topo.Vantage {
	v := lab.Vantages[name]
	if v == nil {
		panic("measure: unknown vantage " + name)
	}
	return v
}

// drainICMP runs the sim and returns whether an echo reply from dst arrived.
func pingBlocked(lab *topo.Lab, st *hostnet.Stack, dst netip.Addr) bool {
	got := false
	st.OnICMP(func(p *packet.Packet) {
		if p.ICMP.Type == packet.ICMPEchoReply && p.IP.Src == dst {
			got = true
		}
	})
	st.Ping(dst, 99, 1)
	lab.Sim.Run()
	st.OnICMP(nil)
	return !got
}
