package measure

import (
	"testing"

	"tspusim/internal/topo"
)

func remoteLab(t *testing.T) *topo.Lab {
	t.Helper()
	return topo.Build(topo.Options{Seed: 12, Endpoints: 240, ASes: 20, EchoServers: 60, TrancoN: 100, RegistryN: 100})
}

func TestTTLLocalize(t *testing.T) {
	lab := remoteLab(t)
	for _, name := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
		res := TTLLocalize(lab, name, 10)
		if res.TriggerTTL == 0 {
			t.Fatalf("%s: no device found", name)
		}
		// Paper: within the first three hops; our topologies put the
		// symmetric device on the access-agg link (trigger TTL 2).
		if res.TriggerTTL > 3 {
			t.Fatalf("%s: device at trigger TTL %d", name, res.TriggerTTL)
		}
		if res.Render() == "" {
			t.Fatal("empty render")
		}
	}
}

func TestPartialVisibility(t *testing.T) {
	lab := remoteLab(t)
	// Rostelecom and OBIT have upstream-only devices; ER-Telecom does not.
	rt := PartialVisibility(lab, topo.Rostelecom, 12)
	if len(rt.UpstreamOnlyTTLs) == 0 {
		t.Fatal("rostelecom: upstream-only device not detected")
	}
	obit := PartialVisibility(lab, topo.OBIT, 12)
	if len(obit.UpstreamOnlyTTLs) == 0 {
		t.Fatal("obit: upstream-only device not detected")
	}
	ert := PartialVisibility(lab, topo.ERTelecom, 12)
	if len(ert.UpstreamOnlyTTLs) != 0 {
		t.Fatalf("ertelecom: spurious upstream-only device at %v", ert.UpstreamOnlyTTLs)
	}
	if rt.Render() == "" || ert.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestEchoMeasure(t *testing.T) {
	lab := remoteLab(t)
	res := EchoMeasure(lab, 20)
	if res.Discovered == 0 {
		t.Fatal("no echo servers discovered")
	}
	if res.NmapFiltered == 0 || res.NmapFiltered > res.Discovered {
		t.Fatalf("funnel broken: %d -> %d", res.Discovered, res.NmapFiltered)
	}
	if res.TSPUPositive == 0 {
		t.Fatal("no echo positives despite upstream-only ASes")
	}
	if res.TSPUPositive > res.NmapFiltered {
		t.Fatal("positives exceed tested")
	}
	// Ground truth check: every positive is behind an upstream-only device;
	// clean endpoints are never positive.
	for _, v := range res.Verdicts {
		if v.EchoBlocked && !v.Endpoint.BehindUpstreamOnly {
			t.Fatalf("false positive at %v (deploy=%v)", v.Endpoint.Addr, v.Endpoint.AS.Deploy)
		}
	}
	// Table 5 (upper): echo positives must be IP-blocked too.
	c := res.Table5Echo()
	if c.NB != 0 {
		t.Fatalf("echo-positive but not IP-blocked: %d", c.NB)
	}
	if c.BB == 0 {
		t.Fatal("no (B,B) cell")
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestEchoControlCatchesSymmetric(t *testing.T) {
	// Endpoints behind symmetric TSPUs see no echo blocking (the device saw
	// the remote SYN), which is exactly why the paper needed the frag scan.
	lab := remoteLab(t)
	res := EchoMeasure(lab, 20)
	for _, v := range res.Verdicts {
		if v.Endpoint.BehindTSPU && v.EchoBlocked {
			t.Fatalf("symmetric-TSPU endpoint flagged by echo: %v", v.Endpoint.Addr)
		}
	}
}

func TestFragScanGroundTruth(t *testing.T) {
	lab := remoteLab(t)
	res := FragScan(lab, true, true)
	if len(res.Verdicts) != len(lab.Endpoints) {
		t.Fatal("not all endpoints scanned")
	}
	tp, fp, fn := 0, 0, 0
	for _, v := range res.Verdicts {
		switch {
		case v.TSPULike && v.Endpoint.BehindTSPU:
			tp++
		case v.TSPULike && !v.Endpoint.BehindTSPU:
			fp++
		case !v.TSPULike && v.Endpoint.BehindTSPU:
			fn++
		}
	}
	if fp != 0 {
		t.Fatalf("false positives: %d", fp)
	}
	if fn != 0 {
		t.Fatalf("false negatives: %d", fn)
	}
	if tp == 0 {
		t.Fatal("no true positives")
	}
	// Upstream-only endpoints are invisible to the frag scan (§7.3).
	for _, v := range res.Verdicts {
		if v.Endpoint.BehindUpstreamOnly && v.TSPULike {
			t.Fatal("upstream-only endpoint detected by frag scan")
		}
	}
}

func TestFragLocalizationMatchesGroundTruth(t *testing.T) {
	// A larger AS population than the other remote tests: the Fig. 12 shape
	// check needs the per-AS depth samples to average out.
	lab := topo.Build(topo.Options{Seed: 12, Endpoints: 600, ASes: 60, EchoServers: 60, TrancoN: 100, RegistryN: 100})
	res := FragScan(lab, false, true)
	checked := 0
	for _, v := range res.Verdicts {
		if !v.TSPULike || v.LocalizedHops == 0 {
			continue
		}
		checked++
		if v.LocalizedHops != v.Endpoint.DeviceHops {
			t.Fatalf("endpoint %v: localized %d hops, ground truth %d",
				v.Endpoint.Addr, v.LocalizedHops, v.Endpoint.DeviceHops)
		}
	}
	if checked == 0 {
		t.Fatal("nothing localized")
	}
	// Fig. 12 shape: majority within two hops.
	if res.HopHist.Total() == 0 || res.HopHist.FracAtOrBelow(2) < 0.4 {
		t.Fatalf("hop histogram shape off: frac<=2 = %.2f", res.HopHist.FracAtOrBelow(2))
	}
	if res.Render(lab.PaperScale()) == "" {
		t.Fatal("empty render")
	}
}

func TestFragTorCorrelation(t *testing.T) {
	lab := remoteLab(t)
	res := FragScan(lab, true, false)
	c := res.Table5Frag()
	if c.Total() == 0 {
		t.Fatal("empty contingency")
	}
	// Fragment-positive implies IP-blocked (symmetric device on path);
	// IP-blocked without fragment-positive are the upstream-only cases.
	if c.NB != 0 {
		t.Fatalf("fragment-positive but not IP-blocked: %d", c.NB)
	}
	if c.BN == 0 {
		t.Fatal("expected upstream-only (B,N) disagreements")
	}
	if c.String() == "" {
		t.Fatal("empty render")
	}
}

func TestUSValidation(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 21, Endpoints: 60, ASes: 6, TrancoN: 100, RegistryN: 100})
	us := lab.BuildUSPopulation(800)
	res := ValidateUS(lab, us)
	if res.Total != 800 {
		t.Fatalf("total = %d", res.Total)
	}
	frac := float64(res.TSPULike) / float64(res.Total)
	// Paper: 0.708%. With 800 endpoints expect a handful.
	if frac > 0.05 {
		t.Fatalf("US false-positive rate = %.3f, too high", frac)
	}
	// The AS17306-like group must be discoverable at larger n; just require
	// ground truth consistency here.
	for _, ep := range us {
		if ep.FragLimit == 45 && res.TSPULike == 0 {
			t.Fatal("45-limit middlebox present but no TSPU-like US host found")
		}
	}
}
