package measure

import (
	"fmt"
	"strings"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/quicx"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
	"tspusim/internal/workload"
)

// The policy timeline of §2/§5.2, as centrally-pushed phases. What makes
// the TSPU architecture novel is not any single behavior but that these
// transitions happened simultaneously across every ISP in the country —
// that uniform flip is what the replay demonstrates.
//
//	March 2021:   Twitter throttled at ~130 kbps [98]; no QUIC filter.
//	Feb 26 2022:  hard throttling at 600-700 B/s for twitter.com/fbcdn.net.
//	March 4 2022: throttling replaced by SNI-I RST blocking; QUIC v1
//	              filtering begins; wartime news domains blocked.
type TimelinePhase struct {
	Name  string
	Apply func(*tspu.Policy)
}

// TimelinePhases returns the historical policy phases.
func TimelinePhases() []TimelinePhase {
	return []TimelinePhase{
		{
			Name: "2021-03 Twitter throttling (130 kbps policing)",
			Apply: func(p *tspu.Policy) {
				p.ThrottleActive = true
				p.ThrottleRate = 16250 // ~130 kbps in bytes/second
				p.QUICFilter = false
			},
		},
		{
			Name: "2022-02-26 hard throttling (600-700 B/s)",
			Apply: func(p *tspu.Policy) {
				p.ThrottleActive = true
				p.ThrottleRate = 650
				p.QUICFilter = false
			},
		},
		{
			Name: "2022-03-04 RST blocking + QUIC filter",
			Apply: func(p *tspu.Policy) {
				p.ThrottleActive = false
				p.QUICFilter = true
				// Wartime additions: western and independent media join
				// SNI-I ("the day the news died", §2).
				for _, wk := range workload.WellKnownDomains() {
					if wk.SNI1 {
						p.SNI1Domains.Add(wk.Name)
					}
				}
			},
		},
	}
}

// TimelineSample is the measured client experience in one phase.
type TimelineSample struct {
	Phase string
	// TwitterGoodputBps is upstream goodput to a throttle-listed domain.
	TwitterGoodputBps float64
	// TwitterReset reports RST-based blocking.
	TwitterReset bool
	// QUICWorks reports whether a QUIC v1 exchange completes.
	QUICWorks bool
	// MeasuredAt is the virtual time of the sample.
	MeasuredAt time.Duration
}

// TimelineReplay pushes each phase to every device in the country via the
// controller and measures the same client workload under each — all on one
// continuous virtual clock, like a vantage point living through the events.
func TimelineReplay(lab *topo.Lab) []TimelineSample {
	v := vantageOf(lab, topo.ERTelecom)
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	var out []TimelineSample
	for _, phase := range TimelinePhases() {
		lab.Controller.Update(phase.Apply)
		s := TimelineSample{Phase: phase.Name}

		// Goodput probe against the throttled/blocked domain.
		f := NewFlow(lab, v.Stack, lab.US1, 443)
		f.L(packet.FlagSYN, nil)
		f.R(packet.FlagsSYNACK, nil)
		f.L(packet.FlagACK, nil)
		f.L(packet.FlagsPSHACK, CH(DomainThrottle))
		start := lab.Sim.Now()
		base := len(f.RemoteGot)
		// Offer ~30 kB/s so the 2021 policing level (16.25 kB/s) is visible
		// as a cap rather than hiding below the offered load.
		for i := 0; i < 50; i++ {
			f.Sleep(100 * time.Millisecond)
			f.L(packet.FlagsPSHACK, make([]byte, 3000))
		}
		received := 0
		for _, p := range f.RemoteGot[base:] {
			received += len(p.TCP.Payload)
		}
		s.TwitterGoodputBps = float64(received) / (lab.Sim.Now() - start).Seconds()
		f.Close()

		// RST probe.
		conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
		ch := CH(DomainThrottle)
		conn.OnEstablished = func() { conn.Send(ch) }
		lab.Sim.Run()
		s.TwitterReset = conn.ResetSeen
		conn.Close()

		// QUIC probe.
		sport := v.Stack.EphemeralPort()
		got := 0
		lab.US1.BindUDP(443, func(p *packet.Packet) {
			if p.UDP.SrcPort == sport {
				got++
			}
		})
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, quicx.BuildInitial(quicx.Version1, 1200))
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, []byte("follow-up"))
		lab.Sim.Run()
		s.QUICWorks = got == 2
		s.MeasuredAt = lab.Sim.Now()
		out = append(out, s)

		// Let blocking state from this phase drain before the next: the
		// longest hold is 480 s.
		lab.Sim.RunUntil(lab.Sim.Now() + 10*time.Minute)
	}
	return out
}

// RenderTimeline prints the replay.
func RenderTimeline(samples []TimelineSample) string {
	var b strings.Builder
	b.WriteString("== Policy timeline replay: one vantage living through 2021-2022 ==\n")
	for _, s := range samples {
		fmt.Fprintf(&b, "%s\n", s.Phase)
		fmt.Fprintf(&b, "  twitter goodput: %8.0f B/s   RST-blocked: %-5v   QUIC v1 works: %v\n",
			s.TwitterGoodputBps, s.TwitterReset, s.QUICWorks)
	}
	b.WriteString("paper: policing at 130 kbps (2021) -> 600-700 B/s (Feb 26) -> RST + QUIC filter (Mar 4)\n")
	return b.String()
}
