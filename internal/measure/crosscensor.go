package measure

import (
	"fmt"
	"strings"
	"time"

	"tspusim/internal/censor"
	"tspusim/internal/censor/in"
	"tspusim/internal/censor/tm"
	"tspusim/internal/dnsx"
	"tspusim/internal/hostnet"
	"tspusim/internal/httpx"
	"tspusim/internal/ispdpi"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/sim"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

// The cross-censor battery (ROADMAP item 4): run the *identical* probe suite
// against every modeled censor and pin the resulting fingerprint matrix.
// The paper's claim that TSPU behavior is a fingerprint — residual per-flow
// blocking, local-direction-only triggers, downstream RST/ACK rewriting, the
// 45-fragment queue — is only checkable relative to censors that behave
// differently on the same probes: Turkmenistan's bidirectional stateless
// injector (arXiv:2304.04835), India's heterogeneous per-ISP middleboxes
// (arXiv:1808.01708), and the pre-2019 Russian ISP keyword DPI.
//
// Every probe builds a fresh CensorTestbed (fresh Sim, fresh censor
// instance), mirroring the paper's fresh-source-port methodology, so cells
// are independent and the matrix is a pure function of the model tables.

// CrossBlockedDomain is the canonical blocked name installed into every
// model's trigger tables, so each cell elicits behavior with the same
// stimulus. RFE/RL is blocked by Russia, Turkmenistan (its Turkmen service),
// and a subset of Indian ISPs, making it the honest common denominator.
const CrossBlockedDomain = "rferl.org"

// CensorModel is one column of the fingerprint matrix.
type CensorModel struct {
	Name string
	// Cite is the paper establishing the modeled behavior.
	Cite string
	// Build constructs a fresh instance configured with the battery's
	// canonical blocked domain, on the testbed's simulator.
	Build func(s *sim.Sim) censor.Censor
}

// CrossCensorModels returns the battery's model set in matrix column order.
func CrossCensorModels(seed uint64) []CensorModel {
	return []CensorModel{
		{
			Name: "tspu",
			Cite: "TSPU (IMC '22)",
			Build: func(s *sim.Sim) censor.Censor {
				d := tspu.NewDevice(tspu.Config{
					Name:     "tspu",
					Sim:      s,
					Rand:     sim.NewRand(sim.StreamSeed(seed, "crosscensor/tspu")),
					LocalDir: topo.CensorTestbedLocalDir,
				})
				ctl := tspu.NewController(nil)
				ctl.Register(d)
				ctl.Update(func(p *tspu.Policy) {
					p.SNI1Domains.Add(CrossBlockedDomain)
					p.QUICFilter = true
				})
				return d
			},
		},
		{
			Name: "ispdpi-keyword",
			Cite: "pre-2019 RU ISP DPI (§2 [81])",
			Build: func(s *sim.Sim) censor.Censor {
				return &ispdpi.KeywordDPI{ISP: "crosscensor", Keywords: []string{CrossBlockedDomain}}
			},
		},
		{
			Name: "tm",
			Cite: "arXiv:2304.04835",
			Build: func(s *sim.Sim) censor.Censor {
				c := tm.New(tm.Config{})
				c.Rules().AddAll(CrossBlockedDomain)
				return c
			},
		},
		{
			Name: "in-airtel",
			Cite: "arXiv:1808.01708",
			Build: func(s *sim.Sim) censor.Censor {
				p := in.ProfileFor("airtel")
				p.Blocklist.Add(CrossBlockedDomain)
				return in.New(in.Config{Profile: p, LocalDir: topo.CensorTestbedLocalDir})
			},
		},
		{
			Name: "in-jio",
			Cite: "arXiv:1808.01708",
			Build: func(s *sim.Sim) censor.Censor {
				p := in.ProfileFor("jio")
				p.Blocklist.Add(CrossBlockedDomain)
				return in.New(in.Config{Profile: p, LocalDir: topo.CensorTestbedLocalDir})
			},
		},
		{
			Name: "in-mtnl",
			Cite: "arXiv:1808.01708",
			Build: func(s *sim.Sim) censor.Censor {
				p := in.ProfileFor("mtnl")
				p.Blocklist.Add(CrossBlockedDomain)
				return in.New(in.Config{Profile: p, LocalDir: topo.CensorTestbedLocalDir})
			},
		},
	}
}

// CensorProbe is one row of the fingerprint matrix: family/name plus the
// probe function, which builds its own testbed and returns the observed
// behavior as a canonical string.
type CensorProbe struct {
	Family string
	Name   string
	Run    func(m CensorModel) string
}

// ID returns the row label.
func (p CensorProbe) ID() string { return p.Family + "/" + p.Name }

// CensorProbes returns the battery rows in matrix order. Every probe is the
// same stimulus for every model; cells differ only because behaviors do.
func CensorProbes() []CensorProbe {
	return []CensorProbe{
		{"localize", "tls-ttl-ladder", probeLocalizeTLS},
		{"localize", "http-ttl-ladder", probeLocalizeHTTP},
		{"state", "remote-first-flow", probeRemoteFirst},
		{"state", "server-side-clienthello", probeServerSideCH},
		{"state", "conntrack-occupancy", probeConntrack},
		{"frag", "syn-queue-limit", probeFragLimit},
		{"frag", "split-clienthello", probeFragCH},
		{"residual", "reused-port", probeResidualReused},
		{"residual", "fresh-port", probeResidualFresh},
		{"residual", "after-expiry", probeResidualExpiry},
		{"dns", "blocked-query", probeDNSBlocked},
		{"dns", "reverse-query", probeDNSReverse},
		{"http", "blocked-host", probeHTTPBlocked},
		{"http", "control-host", probeHTTPControl},
		{"list", "divergent-hosts", probeDivergentHosts},
		{"tls", "blocked-sni", probeTLSBlocked},
		{"quic", "blocked-initial", probeQUIC},
	}
}

// FingerprintMatrix is the deterministic censor × probe → behavior table.
type FingerprintMatrix struct {
	Models []CensorModel
	Probes []CensorProbe
	// Cells is indexed [probe][model].
	Cells [][]string
}

// CrossCensor runs the full battery.
func CrossCensor(seed uint64) *FingerprintMatrix {
	mx := &FingerprintMatrix{
		Models: CrossCensorModels(seed),
		Probes: CensorProbes(),
	}
	for _, p := range mx.Probes {
		row := make([]string, 0, len(mx.Models))
		for _, m := range mx.Models {
			row = append(row, p.Run(m))
		}
		mx.Cells = append(mx.Cells, row)
	}
	return mx
}

// Cell returns the observed behavior for (probeID, modelName), panicking on
// unknown labels — tests pass constants.
func (mx *FingerprintMatrix) Cell(probeID, model string) string {
	pi, mi := -1, -1
	for i, p := range mx.Probes {
		if p.ID() == probeID {
			pi = i
		}
	}
	for i, m := range mx.Models {
		if m.Name == model {
			mi = i
		}
	}
	if pi < 0 || mi < 0 {
		panic("crosscensor: unknown cell " + probeID + " × " + model)
	}
	return mx.Cells[pi][mi]
}

// Fingerprint returns one model's column joined in probe order — the string
// that must be unique per censor for the models to be distinguishable.
func (mx *FingerprintMatrix) Fingerprint(model string) string {
	var parts []string
	for _, p := range mx.Probes {
		parts = append(parts, p.ID()+"="+mx.Cell(p.ID(), model))
	}
	return strings.Join(parts, "; ")
}

// DistinctFingerprints counts unique columns.
func (mx *FingerprintMatrix) DistinctFingerprints() int {
	seen := map[string]bool{}
	for _, m := range mx.Models {
		seen[mx.Fingerprint(m.Name)] = true
	}
	return len(seen)
}

// Render prints the matrix as the crosscensor experiment's report.
func (mx *FingerprintMatrix) Render() string {
	var b strings.Builder
	t := report.NewTable("Cross-censor fingerprint matrix (identical probe battery, one column per censor model)",
		"Probe", "Censor", "Observed behavior")
	for pi, p := range mx.Probes {
		for mi, m := range mx.Models {
			t.AddRow(p.ID(), m.Name, mx.Cells[pi][mi])
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "models: %d (", len(mx.Models))
	for i, m := range mx.Models {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", m.Name, m.Cite)
	}
	b.WriteString(")\n")
	families := map[string]bool{}
	for _, p := range mx.Probes {
		families[p.Family] = true
	}
	fmt.Fprintf(&b, "probe families: %d, probes: %d, distinct fingerprints: %d/%d\n",
		len(families), len(mx.Probes), mx.DistinctFingerprints(), len(mx.Models))
	b.WriteString("stimulus domain: " + CrossBlockedDomain + " (installed in every model's tables); control: " + DomainControl + "\n")
	return b.String()
}

// ---- probe implementations ----

// Canonical cell vocabulary. Probes translate raw observations into these
// strings; the differential pair tests pin exact values, so changing one is
// changing a behavioral claim.
const (
	cellNone = "no interference"
)

func newCensorTestbed(m CensorModel) *topo.CensorTestbed {
	return topo.BuildCensorTestbed(m.Build)
}

func anyRST(pkts []*packet.Packet) bool {
	for _, p := range pkts {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagRST) {
			return true
		}
	}
	return false
}

// pinnedFlow is NewFlowOn with an explicit local port — residual probes must
// reuse the triggering 4-tuple.
func pinnedFlow(t *topo.CensorTestbed, lport uint16) *Flow {
	f := &Flow{sim: t.Sim, Local: t.Client, Remote: t.Server, LPort: lport, RPort: 443, lseq: 1000, rseq: 5000}
	t.Client.RawBind(lport, func(p *packet.Packet) { f.LocalGot = append(f.LocalGot, p) })
	t.Server.RawBind(443, func(p *packet.Packet) {
		if p.TCP.SrcPort == lport {
			f.RemoteGot = append(f.RemoteGot, p)
		}
	})
	return f
}

// handshake runs the scripted three-way exchange.
func handshake(f *Flow) {
	f.L(packet.FlagSYN, nil)
	f.R(packet.FlagsSYNACK, nil)
	f.L(packet.FlagACK, nil)
}

// probeTLSBlocked: full handshake, blocked ClientHello, then a downstream
// data probe. Separates the TSPU's downstream rewrite from injection-style
// censors and from in-flight rewriters.
func probeTLSBlocked(m CensorModel) string {
	t := newCensorTestbed(m)
	f := NewFlowOn(t.Sim, t.Client, t.Server, 443)
	defer f.Close()
	handshake(f)
	f.L(packet.FlagsPSHACK, CH(CrossBlockedDomain))
	injectedRST := f.LastLocalRST()
	upstreamRST := anyRST(f.RemoteGot)
	chDelivered := f.remoteDataCount() > 0
	f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
	downstreamRST := f.LastLocalRST()
	switch {
	case injectedRST && !chDelivered:
		return "rst injected to both ends, trigger consumed"
	case upstreamRST && !chDelivered:
		return "trigger rewritten to rst in flight"
	case chDelivered && downstreamRST:
		return "trigger passed, downstream rewritten to rst/ack"
	case chDelivered && !downstreamRST:
		return cellNone
	default:
		return "trigger silently dropped"
	}
}

// probeHTTPBlocked: a real TCP connection fetching a blocked Host. The
// client-visible outcome — branded blockpage, bare reset, origin page, or
// silence — is the §5/§6 attribution axis of the India paper.
func probeHTTPBlocked(m CensorModel) string { return httpProbe(m, CrossBlockedDomain) }

// probeHTTPControl: same fetch for an unblocked Host; every model must serve
// the origin (overblocking would show here).
func probeHTTPControl(m CensorModel) string { return httpProbe(m, DomainControl) }

func httpProbe(m CensorModel, host string) string {
	t := newCensorTestbed(m)
	conn := t.Client.Dial(t.ServerAddr(), 80, hostnet.DialOptions{})
	t.Sim.Run()
	conn.Send(httpx.FormatRequest("GET", host, "/"))
	t.Sim.Run()
	body := string(conn.Received)
	switch {
	case strings.Contains(body, "origin content of "+host):
		return "origin page served"
	case len(body) > 0:
		// An injected page: attribute it by censor ID, the way the India
		// paper fingerprints ISPs from their injected packets (§6.3).
		for _, p := range in.Profiles() {
			if p.CensorID != "" && strings.Contains(body, p.CensorID) {
				return "blockpage injected [censor-id: " + p.ISP + "]"
			}
		}
		return "blockpage injected [censor-id: unknown]"
	case conn.ResetSeen:
		return "rst injected, no page"
	case len(t.ServerHTTPHosts) == 0:
		return "request killed in flight, no response"
	default:
		return "request served but response lost"
	}
}

// probeDivergentHosts: fetch the IN profiles' per-ISP divergence rows. The
// India paper's central list finding is that each ISP enforces its own
// snapshot of the blocking orders (§4.3, Fig. 4) — so even two ISPs with the
// same mechanism are distinguishable by *which* names they block. The other
// models block none of these, making the cell a pure list fingerprint.
func probeDivergentHosts(m CensorModel) string {
	hosts := []string{"vimeo.com", "telegram.org", "archive.org"}
	var blocked []string
	for _, h := range hosts {
		if httpProbe(m, h) != "origin page served" {
			blocked = append(blocked, h)
		}
	}
	if len(blocked) == 0 {
		return "all served (shared stimulus only)"
	}
	return "blocked: " + strings.Join(blocked, ", ")
}

// probeDNSBlocked: an A query for the blocked name through the censor to the
// origin resolver. Forged-answer injection is TM's primary mechanism and one
// of India's; the TSPU does not touch DNS (its DNS-era predecessor did).
func probeDNSBlocked(m CensorModel) string {
	t := newCensorTestbed(m)
	var answers []*dnsx.Message
	t.Client.BindUDP(5353, func(p *packet.Packet) {
		if msg, err := dnsx.Decode(p.UDP.Payload); err == nil {
			answers = append(answers, msg)
		}
	})
	wire, err := dnsx.NewQuery(7, CrossBlockedDomain).Encode()
	if err != nil {
		return "query encode failed"
	}
	t.Client.SendUDP(t.ServerAddr(), 5353, 53, wire)
	t.Sim.Run()
	return classifyDNSAnswers(answers)
}

func classifyDNSAnswers(answers []*dnsx.Message) string {
	if len(answers) == 0 {
		return "no answer"
	}
	first := answers[0]
	forged := len(first.Answers) > 0 && first.Answers[0].Addr != topo.CensorTestbedRealAnswer
	switch {
	case forged && len(answers) > 1:
		return "forged answer injected (races the legit reply)"
	case forged:
		return "forged answer injected (query consumed)"
	default:
		return "resolved by origin"
	}
}

// probeDNSReverse: the same query sent *into* the client network from the
// server side — no resolver lives there, so any answer is injected. This is
// exactly how the TM paper measured Turkmenistan from outside (§3.1).
func probeDNSReverse(m CensorModel) string {
	t := newCensorTestbed(m)
	var answers []*dnsx.Message
	t.Server.BindUDP(5353, func(p *packet.Packet) {
		if msg, err := dnsx.Decode(p.UDP.Payload); err == nil {
			answers = append(answers, msg)
		}
	})
	wire, err := dnsx.NewQuery(9, CrossBlockedDomain).Encode()
	if err != nil {
		return "query encode failed"
	}
	t.Server.SendUDP(t.Client.Addr(), 5353, 53, wire)
	t.Sim.Run()
	if len(answers) == 0 {
		return "no answer (inbound queries not inspected)"
	}
	return "forged answer injected (bidirectional inspection)"
}

// probeRemoteFirst: the server opens the connection, then the client sends
// the blocked ClientHello. The TSPU's conntrack exempts remotely-originated
// flows (§5.2 role confusion); stateless censors cannot tell the difference.
func probeRemoteFirst(m CensorModel) string {
	t := newCensorTestbed(m)
	f := NewFlowOn(t.Sim, t.Client, t.Server, 443)
	defer f.Close()
	f.R(packet.FlagSYN, nil)
	f.L(packet.FlagsSYNACK, nil)
	f.R(packet.FlagACK, nil)
	f.L(packet.FlagsPSHACK, CH(CrossBlockedDomain))
	injectedRST := f.LastLocalRST()
	upstreamRST := anyRST(f.RemoteGot)
	chDelivered := f.remoteDataCount() > 0
	f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
	switch {
	case injectedRST && !chDelivered:
		return "acts (rst injected; no flow-origin state)"
	case upstreamRST && !chDelivered:
		return "acts (rewritten in flight; no flow-origin state)"
	case chDelivered && f.LastLocalRST():
		return "acts (downstream rewritten)"
	case chDelivered:
		return cellNone
	default:
		return "trigger silently dropped"
	}
}

// probeServerSideCH: the blocked ClientHello travels server→client on an
// established flow. Bidirectional censors fire; direction-bound ones pass.
func probeServerSideCH(m CensorModel) string {
	t := newCensorTestbed(m)
	f := NewFlowOn(t.Sim, t.Client, t.Server, 443)
	defer f.Close()
	handshake(f)
	before := len(f.LocalGot)
	f.R(packet.FlagsPSHACK, CH(CrossBlockedDomain))
	gotPayload, gotRST := false, false
	for _, p := range f.LocalGot[before:] {
		if len(p.TCP.Payload) > 0 {
			gotPayload = true
		}
		if p.TCP.Flags.Has(packet.FlagRST) {
			gotRST = true
		}
	}
	serverRST := anyRST(f.RemoteGot)
	switch {
	case gotPayload && !gotRST:
		return "passed (direction not inspected)"
	case gotRST && serverRST:
		return "acts (consumed; rst injected to both ends)"
	case gotRST:
		return "acts (rewritten to rst in flight)"
	default:
		return "silently dropped"
	}
}

// probeConntrack: open 40 distinct raw flows, then read the model's own
// flow-table occupancy — the state that residual blocking and exhaustion
// attacks live in.
func probeConntrack(m CensorModel) string {
	t := newCensorTestbed(m)
	for i := 0; i < 40; i++ {
		f := NewFlowOn(t.Sim, t.Client, t.Server, 443)
		handshake(f)
		f.Close()
	}
	n := t.Censor.ConntrackSize()
	if n == 0 {
		return "stateless (0 flows tracked after 40 opens)"
	}
	return fmt.Sprintf("stateful (%d flows tracked after 40 opens)", n)
}

// probeFragLimit: the §7.2 fingerprint — a SYN in 45 fragments vs 46.
func probeFragLimit(m CensorModel) string {
	t45 := newCensorTestbed(m)
	r45 := fragProbeOn(t45.Sim, t45.Client, t45.ServerAddr(), 443, 45, 0)
	t46 := newCensorTestbed(m)
	r46 := fragProbeOn(t46.Sim, t46.Client, t46.ServerAddr(), 443, 46, 0)
	switch {
	case r45 && !r46:
		return "45 answered, 46 dropped (45-fragment queue limit)"
	case r45 && r46:
		return "45 and 46 both answered (no queue limit below host's 64)"
	case !r45 && r46:
		return "45 dropped, 46 answered (inverted limit?)"
	default:
		return "both dropped"
	}
}

// probeFragCH: the blocked ClientHello split across two IP fragments. None
// of the modeled censors reassemble before inspecting, so this is the shared
// evasion cell — pinned so a model that silently grows reassembly changes it.
func probeFragCH(m CensorModel) string {
	t := newCensorTestbed(m)
	f := NewFlowOn(t.Sim, t.Client, t.Server, 443)
	defer f.Close()
	handshake(f)
	ch := packet.NewTCP(t.Client.Addr(), t.ServerAddr(), f.LPort, 443, packet.FlagsPSHACK, f.lseq, f.rseq, CH(CrossBlockedDomain))
	ch.IP.ID = t.Client.NextIPID()
	frags, err := packet.FragmentCount(ch, 2)
	if err != nil {
		return "fragmentation failed"
	}
	for _, fr := range frags {
		t.Client.Send(fr)
	}
	t.Sim.Run()
	chDelivered := f.remoteDataCount() > 0
	f.rseq += 0 // raw scripting: the downstream probe keeps the pre-CH ack
	f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
	blocked := f.LastLocalRST() || anyRST(f.RemoteGot)
	switch {
	case chDelivered && !blocked:
		return "evades (no reassembly before inspection)"
	case blocked:
		return "caught despite fragmentation"
	default:
		return "fragments dropped"
	}
}

// probeResidualReused / Fresh / Expiry: the §3 methodology triple — trigger
// on a port, then probe the same 4-tuple, a fresh port, and the same 4-tuple
// after the hold expires.
func probeResidualReused(m CensorModel) string {
	t, port := residualTrigger(m)
	if residualBenignBlocked(t, port) {
		return "blocked (per-flow state persists)"
	}
	return "clean (no residual state)"
}

func probeResidualFresh(m CensorModel) string {
	t, _ := residualTrigger(m)
	if residualBenignBlocked(t, t.Client.EphemeralPort()) {
		return "blocked (over-broad state)"
	}
	return "clean"
}

func probeResidualExpiry(m CensorModel) string {
	t, port := residualTrigger(m)
	if !residualBenignBlocked(t, port) {
		return "n/a (no residual state to expire)"
	}
	t.Sim.RunUntil(t.Sim.Now() + 80*time.Second)
	if residualBenignBlocked(t, port) {
		return "still blocked after 80s"
	}
	return "blocked, then clean after 80s (hold expired)"
}

// residualTrigger fires the blocked ClientHello on a fresh port and returns
// the testbed plus the now-tainted port.
func residualTrigger(m CensorModel) (*topo.CensorTestbed, uint16) {
	t := newCensorTestbed(m)
	port := t.Client.EphemeralPort()
	f := pinnedFlow(t, port)
	handshake(f)
	f.L(packet.FlagsPSHACK, CH(CrossBlockedDomain))
	f.Close()
	return t, port
}

// residualBenignBlocked runs a benign connection on the given port and
// reports whether it still sees blocking (mirrors ResidualCensorship).
func residualBenignBlocked(t *topo.CensorTestbed, port uint16) bool {
	f := pinnedFlow(t, port)
	defer f.Close()
	handshake(f)
	f.L(packet.FlagsPSHACK, CH(DomainControl))
	f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
	return f.LastLocalRST()
}

// probeQUIC: a QUIC-shaped initial to udp/443. Only the TSPU models a QUIC
// filter; every other censor forwards UDP it does not parse.
func probeQUIC(m CensorModel) string {
	t := newCensorTestbed(m)
	got := 0
	sport := t.Client.EphemeralPort()
	t.Client.BindUDP(sport, func(p *packet.Packet) { got++ })
	t.Client.SendUDP(t.ServerAddr(), sport, 443, quicTriggerPayload())
	t.Sim.Run()
	if got == 0 {
		return "initial dropped (QUIC filter)"
	}
	return "passed (server flight received)"
}

// probeLocalizeTLS / probeLocalizeHTTP: TTL-limited trigger ladders (§7.1).
// Each TTL gets a fresh testbed; the cell reports the first TTL at which the
// trigger produced observable interference. The censor sits past two
// routers, so an at-the-censor reaction first appears at TTL 3; a censor
// whose only signal is an in-flight rewrite needs the rewritten packet to
// *survive to the destination*, which takes one more hop.
func probeLocalizeTLS(m CensorModel) string {
	return localizeLadder(m, func(t *topo.CensorTestbed, f *Flow, ttl uint8) bool {
		f.LTTL(ttl, packet.FlagsPSHACK, CH(CrossBlockedDomain))
		interfered := f.LastLocalRST() || anyRST(f.RemoteGot)
		f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
		return interfered || f.LastLocalRST()
	}, 443)
}

func probeLocalizeHTTP(m CensorModel) string {
	return localizeLadder(m, func(t *topo.CensorTestbed, f *Flow, ttl uint8) bool {
		before := len(f.LocalGot)
		f.LTTL(ttl, packet.FlagsPSHACK, httpx.FormatRequest("GET", CrossBlockedDomain, "/"))
		return len(f.LocalGot) > before || anyRST(f.RemoteGot)
	}, 80)
}

func localizeLadder(m CensorModel, trigger func(t *topo.CensorTestbed, f *Flow, ttl uint8) bool, port uint16) string {
	for ttl := 1; ttl <= topo.CensorTestbedPathRouters+2; ttl++ {
		t := newCensorTestbed(m)
		f := NewFlowOn(t.Sim, t.Client, t.Server, port)
		handshake(f)
		hit := trigger(t, f, uint8(ttl))
		f.Close()
		if hit {
			if ttl == topo.CensorTestbedHopTTL {
				return fmt.Sprintf("first interference at probe ttl %d (censor link)", ttl)
			}
			return fmt.Sprintf("first interference at probe ttl %d (rewrite must reach destination)", ttl)
		}
	}
	return "not localizable (no ttl-limited interference)"
}
