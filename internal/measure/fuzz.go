package measure

import (
	"fmt"
	"strings"

	"tspusim/internal/packet"
	"tspusim/internal/quicx"
	"tspusim/internal/report"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
)

// CHFuzzRow is one alteration's outcome: did the mutated ClientHello still
// trigger blocking?
type CHFuzzRow struct {
	Name       string
	Structural bool
	Blocked    bool
}

// CHFuzz maps which parts of a ClientHello the TSPU inspects (Fig. 13) by
// applying every alteration strategy to a triggering ClientHello and
// observing whether blocking still occurs. Structural corruptions (type and
// length fields) break the device's parser and evade; cosmetic changes
// (versions, random, cipher order) do not.
func CHFuzz(lab *topo.Lab) []CHFuzzRow {
	v := vantageOf(lab, topo.ERTelecom)
	base := (&tlsx.ClientHelloSpec{ServerName: DomainSNI1}).Build()

	probe := func(payload []byte) bool {
		blocked := false
		for i := 0; i < 3 && !blocked; i++ {
			f := NewFlow(lab, v.Stack, lab.US1, 443)
			f.L(packet.FlagSYN, nil)
			f.R(packet.FlagsSYNACK, nil)
			f.L(packet.FlagACK, nil)
			f.L(packet.FlagsPSHACK, payload)
			f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
			blocked = f.LastLocalRST()
			f.Close()
		}
		return blocked
	}

	rows := []CHFuzzRow{{Name: "unmodified", Structural: false, Blocked: probe(base)}}
	for _, alt := range tlsx.Alterations() {
		rows = append(rows, CHFuzzRow{
			Name:       alt.Name,
			Structural: alt.Structural,
			Blocked:    probe(alt.Apply(base)),
		})
	}
	return rows
}

// RenderCHFuzz prints the Fig. 13 inspection map.
func RenderCHFuzz(rows []CHFuzzRow) string {
	t := report.NewTable("Fig. 13: ClientHello fields the TSPU inspects",
		"Alteration", "Kind", "Still blocked")
	for _, r := range rows {
		kind := "cosmetic (ignored by parser)"
		if r.Structural {
			kind = "structural (type/length field)"
		}
		if r.Name == "unmodified" {
			kind = "baseline"
		}
		t.AddRow(r.Name, kind, r.Blocked)
	}
	return t.String()
}

// QUICFuzzResult is the Fig. 14 boundary sweep.
type QUICFuzzResult struct {
	// MinLen is the smallest payload length that triggers (paper: 1001).
	MinLen int
	// V1Blocked / Draft29Blocked / QuicpingBlocked record version targeting.
	V1Blocked, Draft29Blocked, QuicpingBlocked bool
	// Port80Blocked records whether a non-443 port triggers.
	Port80Blocked bool
}

// QUICFuzz sweeps the QUIC fingerprint boundaries from a vantage.
func QUICFuzz(lab *topo.Lab) QUICFuzzResult {
	v := vantageOf(lab, topo.ERTelecom)
	blocked := func(version uint32, size int, port uint16) bool {
		hit := false
		for i := 0; i < 3 && !hit; i++ {
			sport := v.Stack.EphemeralPort()
			got := 0
			lab.US1.BindUDP(port, func(p *packet.Packet) {
				if p.UDP.SrcPort == sport {
					got++
				}
			})
			v.Stack.SendUDP(lab.US1.Addr(), sport, port, quicx.BuildInitial(version, size))
			v.Stack.SendUDP(lab.US1.Addr(), sport, port, []byte("follow-up"))
			lab.Sim.Run()
			hit = got < 2
		}
		return hit
	}

	res := QUICFuzzResult{
		V1Blocked:       blocked(quicx.Version1, 1200, 443),
		Draft29Blocked:  blocked(quicx.VersionDraft29, 1200, 443),
		QuicpingBlocked: blocked(quicx.VersionQUICPing, 1200, 443),
		Port80Blocked:   blocked(quicx.Version1, 1200, 80),
	}
	// Bisect the length threshold.
	lo, hi := 6, 1200
	if !blocked(quicx.Version1, hi, 443) {
		return res
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if blocked(quicx.Version1, mid, 443) {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.MinLen = hi
	return res
}

// Render prints the Fig. 14 findings.
func (r QUICFuzzResult) Render() string {
	var b strings.Builder
	b.WriteString("== Fig. 14: QUIC fingerprint boundaries ==\n")
	fmt.Fprintf(&b, "minimum triggering payload: %d bytes (paper: 1001)\n", r.MinLen)
	fmt.Fprintf(&b, "QUIC v1 blocked:        %v (paper: yes)\n", r.V1Blocked)
	fmt.Fprintf(&b, "draft-29 blocked:       %v (paper: no — 0xff00001d evades)\n", r.Draft29Blocked)
	fmt.Fprintf(&b, "quicping blocked:       %v (paper: no — 0xbabababa evades)\n", r.QuicpingBlocked)
	fmt.Fprintf(&b, "udp/80 v1 blocked:      %v (paper: no — filter bound to :443)\n", r.Port80Blocked)
	return b.String()
}
