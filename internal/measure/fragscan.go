package measure

import (
	"fmt"
	"net/netip"
	"strings"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/sim"
	"tspusim/internal/topo"
)

// fragProbe sends a SYN to addr:port from st split into n fragments and
// reports whether a SYN/ACK came back. firstTTL/secondTTL control the
// TTL-limited localization variant (0 = default).
func fragProbe(lab *topo.Lab, st *hostnet.Stack, addr netip.Addr, port uint16, n int, secondTTL uint8) bool {
	return fragProbeOn(lab.Sim, st, addr, port, n, secondTTL)
}

// fragProbeOn is fragProbe against any simulator — the cross-censor battery
// runs it on per-cell testbeds that have no Lab.
func fragProbeOn(s *sim.Sim, st *hostnet.Stack, addr netip.Addr, port uint16, n int, secondTTL uint8) bool {
	sport := st.EphemeralPort()
	got := false
	st.RawBind(sport, func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagsSYNACK) && p.IP.Src == addr {
			got = true
		}
	})
	defer st.RawUnbind(sport)
	syn := packet.NewTCP(st.Addr(), addr, sport, port, packet.FlagSYN, 1, 0, nil)
	syn.IP.ID = st.NextIPID()
	frags, err := packet.FragmentCount(syn, n)
	if err != nil {
		return false
	}
	if secondTTL != 0 {
		for i := 1; i < len(frags); i++ {
			frags[i].IP.TTL = secondTTL
		}
	}
	for _, f := range frags {
		st.Send(f)
	}
	s.Run()
	return got
}

// plainProbe sends an ordinary SYN and reports whether it was answered.
func plainProbe(lab *topo.Lab, st *hostnet.Stack, addr netip.Addr, port uint16) bool {
	conn := st.Dial(addr, port, hostnet.DialOptions{})
	lab.Sim.Run()
	ok := len(conn.Packets) > 0 && !conn.ResetSeen
	conn.Close()
	return ok
}

// FragVerdict is one endpoint's fragmentation-scan outcome.
type FragVerdict struct {
	Endpoint *topo.Endpoint
	// Responsive: passed the control probes (plain SYN and a 2-fragment SYN).
	Responsive bool
	// TSPULike: answered 45 fragments but not 46 (§7.2's fingerprint).
	TSPULike bool
	// IPBlocked: the Tor SYN probe returned RST/ACK.
	IPBlocked bool
	// LocalizedHops is the device distance from the destination in links
	// (0 = not localized).
	LocalizedHops int
}

// FragScanResult is the §7.2 remote scan output (Fig. 9, Fig. 12, Table 5
// lower).
type FragScanResult struct {
	Verdicts []FragVerdict
	// PortTotals / PortPositive mirror Fig. 9's bars.
	PortTotals   map[uint16]int
	PortPositive map[uint16]int
	// ASes counts.
	TotalASes, PositiveASes int
	// HopHist is the Fig. 12 histogram (device distance from destination).
	HopHist *report.Hist
}

// FragScan runs the fingerprint over the endpoint population from the Paris
// machine. withTor additionally runs the Tor correlation probes; localize
// additionally runs TTL-limited localization on positives.
func FragScan(lab *topo.Lab, withTor, localize bool) *FragScanResult {
	res := &FragScanResult{
		PortTotals:   make(map[uint16]int),
		PortPositive: make(map[uint16]int),
		HopHist:      report.NewHist("Fig. 12: TSPU link distance from destination (hops)"),
	}
	totalAS := map[int]bool{}
	posAS := map[int]bool{}
	for _, ep := range lab.Endpoints {
		v := FragVerdict{Endpoint: ep}
		res.PortTotals[ep.Port]++
		totalAS[ep.AS.Number] = true
		// Control: must answer plain and 2-fragment SYNs (the paper removed
		// endpoints failing these before testing).
		v.Responsive = plainProbe(lab, lab.Paris, ep.Addr, ep.Port) &&
			fragProbe(lab, lab.Paris, ep.Addr, ep.Port, 2, 0)
		if v.Responsive {
			r45 := fragProbe(lab, lab.Paris, ep.Addr, ep.Port, 45, 0)
			r46 := fragProbe(lab, lab.Paris, ep.Addr, ep.Port, 46, 0)
			v.TSPULike = r45 && !r46
		}
		if v.TSPULike {
			res.PortPositive[ep.Port]++
			posAS[ep.AS.Number] = true
			if localize {
				v.LocalizedHops = fragLocalize(lab, ep)
				if v.LocalizedHops > 0 {
					res.HopHist.Add(v.LocalizedHops)
				}
			}
		}
		if withTor {
			v.IPBlocked = torProbe(lab, ep.Addr, ep.Port)
		}
		res.Verdicts = append(res.Verdicts, v)
	}
	res.TotalASes = len(totalAS)
	res.PositiveASes = len(posAS)
	return res
}

// fragLocalize finds the TSPU device's position: the first fragment goes at
// full TTL, the second at increasing TTLs; the response appears once the
// second fragment survives to the device, which then rewrites its TTL to the
// first fragment's (Fig. 3). Returns the device distance from the
// destination in hops, derived from the probe TTL and the path length.
func fragLocalize(lab *topo.Lab, ep *topo.Endpoint) int {
	pathLen := pathRouterCount(lab, ep)
	if pathLen == 0 {
		return 0
	}
	for ttl := 1; ttl <= pathLen+1; ttl++ {
		if fragProbe(lab, lab.Paris, ep.Addr, ep.Port, 2, uint8(ttl)) {
			// The probe's second fragment died at router `ttl` until now, so
			// the device link follows router ttl-1 (source side). Convert to
			// distance from the destination.
			return pathLen - ttl + 2
		}
	}
	return 0
}

// pathRouterCount counts routers between Paris and the endpoint using a
// plain (unfragmented) TTL ladder — a traceroute without needing ICMP
// bookkeeping: the destination answers once the TTL clears the path.
func pathRouterCount(lab *topo.Lab, ep *topo.Endpoint) int {
	for ttl := 1; ttl <= 32; ttl++ {
		conn := lab.Paris.Dial(ep.Addr, ep.Port, hostnet.DialOptions{TTL: uint8(ttl)})
		lab.Sim.Run()
		reached := len(conn.Packets) > 0
		conn.Close()
		if reached {
			return ttl - 1
		}
	}
	return 0
}

// Table5Frag builds the IP-block vs fragment-fingerprint contingency.
func (r *FragScanResult) Table5Frag() *report.Contingency {
	c := &report.Contingency{Title: "Table 5 (lower): IP blocking vs fragmentation fingerprint", RowName: "IP", ColName: "Fragment"}
	for _, v := range r.Verdicts {
		if !v.Responsive {
			continue
		}
		c.Add(v.IPBlocked, v.TSPULike)
	}
	return c
}

// Render prints the Fig. 9 port breakdown.
func (r *FragScanResult) Render(scale float64) string {
	t := report.NewTable("Fig. 9: endpoints with TSPU installations by port",
		"Port", "Endpoints", "TSPU-like", "Rate", "Paper-scale endpoints")
	total, pos := 0, 0
	for _, port := range topo.ScanPorts {
		n, p := r.PortTotals[port], r.PortPositive[port]
		total += n
		pos += p
		rate := 0.0
		if n > 0 {
			rate = float64(p) / float64(n)
		}
		t.AddRow(port, n, p, fmt.Sprintf("%.1f%%", 100*rate), int(float64(n)*scale))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "total: %d/%d endpoints TSPU-like (%.2f%%; paper: 25.31%%), %d/%d ASes (paper: 650/4986)\n",
		pos, total, 100*float64(pos)/float64(maxOf(total, 1)), r.PositiveASes, r.TotalASes)
	return b.String()
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// USValidation scans a US control population for TSPU-like fragment
// behavior, reproducing the 0.708% finding.
type USValidation struct {
	Total, TSPULike int
}

// ValidateUS runs the fingerprint against lab-built US endpoints.
func ValidateUS(lab *topo.Lab, eps []*topo.USEndpoint) USValidation {
	var res USValidation
	for _, ep := range eps {
		res.Total++
		if !plainProbe(lab, lab.US2, ep.Addr, 7547) {
			continue
		}
		r45 := fragProbe(lab, lab.US2, ep.Addr, 7547, 45, 0)
		r46 := fragProbe(lab, lab.US2, ep.Addr, 7547, 46, 0)
		if r45 && !r46 {
			res.TSPULike++
		}
	}
	return res
}

// LargeASStats reproduces the §7.3 sentence: "among the 85 ASes that we
// have at least 5,000 testing targets in, over 75% of them contain endpoints
// that are behind TSPU installations." The threshold scales with the lab.
type LargeASStats struct {
	Threshold     int
	LargeASes     int
	WithTSPU      int
	FractionTSPU  float64
	OverallASFrac float64
}

// LargeAS computes the statistic from a scan; threshold is the minimum
// endpoints per AS to count it as "large" (the paper's 5,000, scaled).
func (r *FragScanResult) LargeAS(threshold int) LargeASStats {
	perAS := map[int]int{}
	posAS := map[int]bool{}
	for _, v := range r.Verdicts {
		perAS[v.Endpoint.AS.Number]++
		if v.TSPULike {
			posAS[v.Endpoint.AS.Number] = true
		}
	}
	st := LargeASStats{Threshold: threshold}
	for as, n := range perAS {
		if n >= threshold {
			st.LargeASes++
			if posAS[as] {
				st.WithTSPU++
			}
		}
	}
	if st.LargeASes > 0 {
		st.FractionTSPU = float64(st.WithTSPU) / float64(st.LargeASes)
	}
	if len(perAS) > 0 {
		st.OverallASFrac = float64(len(posAS)) / float64(len(perAS))
	}
	return st
}

// Render prints the statistic.
func (s LargeASStats) Render() string {
	return fmt.Sprintf("large ASes (>= %d targets): %d, with TSPU: %d (%.0f%%; paper: >75%% of 85 large ASes)\n"+
		"all ASes with TSPU-like behavior: %.1f%% (paper: 12.8%%)\n",
		s.Threshold, s.LargeASes, s.WithTSPU, 100*s.FractionTSPU, 100*s.OverallASFrac)
}
