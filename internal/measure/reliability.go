package measure

import (
	"fmt"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/quicx"
	"tspusim/internal/report"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

// ReliabilityResult is Table 1: the fraction of connections per vantage and
// blocking type that escaped censorship.
type ReliabilityResult struct {
	Trials int
	// Failures[vantage][type] is the unblocked fraction.
	Failures map[string]map[tspu.BlockType]float64
}

// ReliabilityTypes are the columns of Table 1 (SNI-III was replaced by
// outright blocking before a reliability experiment could be run — the
// paper's own footnote).
var ReliabilityTypes = []tspu.BlockType{tspu.SNI1, tspu.SNI2, tspu.SNI4, tspu.QUICBlock, tspu.IPBlock}

// ReliabilityCols names Table 1's columns, aligned with ReliabilityTypes.
var ReliabilityCols = []string{"SNI-I", "SNI-II", "SNI-IV", "QUIC", "IP-Based"}

// Vantages orders Table 1's rows (and every per-vantage artifact).
var Vantages = []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT}

// Reliability measures Table 1 with the given number of trials per cell
// (paper: 20,000).
func Reliability(lab *topo.Lab, trials int) *ReliabilityResult {
	res := &ReliabilityResult{Trials: trials, Failures: make(map[string]map[tspu.BlockType]float64)}

	// US1 port 443: a normal responding server. US2 port 443: a
	// split-handshake server used to force the SNI-IV backup path.
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	us2Listener := lab.US2.Listen(443, hostnet.ListenOptions{SplitHandshake: true})

	for _, name := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
		v := vantageOf(lab, name)
		res.Failures[name] = make(map[tspu.BlockType]float64)
		for _, typ := range ReliabilityTypes {
			fails := 0
			for i := 0; i < trials; i++ {
				if !trialBlocked(lab, v, typ, us2Listener) {
					fails++
				}
			}
			res.Failures[name][typ] = float64(fails) / float64(trials)
		}
	}
	return res
}

// trialBlocked runs one censorship attempt and reports whether the TSPU
// blocked it.
func trialBlocked(lab *topo.Lab, v *topo.Vantage, typ tspu.BlockType, us2 *hostnet.Listener) bool {
	//tspuvet:allow statecheck: SNI3 throttling is not a binary blocked/unblocked verdict; Table 4 reliability covers only ReliabilityTypes
	switch typ {
	case tspu.SNI1:
		conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
		conn.OnEstablished = func() { conn.Send(CH(DomainSNI1)) }
		lab.Sim.Run()
		blocked := conn.ResetSeen
		conn.Close()
		return blocked
	case tspu.SNI2:
		f := NewFlow(lab, v.Stack, lab.US1, 443)
		defer f.Close()
		f.L(packet.FlagSYN, nil)
		f.R(packet.FlagsSYNACK, nil)
		f.L(packet.FlagACK, nil)
		f.L(packet.FlagsPSHACK, CH(DomainSNI2))
		before := len(f.RemoteGot)
		for i := 0; i < 12; i++ {
			f.L(packet.FlagsPSHACK, []byte("marker"))
		}
		// Unblocked only if every marker arrived.
		return len(f.RemoteGot)-before < 12
	case tspu.SNI4:
		// Only conns accepted after this dial can belong to it, so scan just
		// the tail — the listener's conn list grows with every trial, and a
		// full scan per trial made the whole cell quadratic.
		before := len(us2.Conns)
		conn := v.Stack.Dial(lab.US2.Addr(), 443, hostnet.DialOptions{})
		conn.OnEstablished = func() { conn.Send(CH(DomainSNI14)) }
		lab.Sim.Run()
		// Blocked when the trigger never reached the split-handshake server.
		// Match on both address and port: vantages allocate the same
		// ephemeral port sequence, so port alone collides across them.
		blocked := true
		vAddr := v.Stack.Addr()
		for _, sc := range us2.Conns[before:] {
			if sc.RemoteAddr == vAddr && sc.RemotePort == conn.LocalPort && len(sc.Received) > 0 {
				blocked = false
			}
		}
		conn.Close()
		return blocked
	case tspu.QUICBlock:
		sport := v.Stack.EphemeralPort()
		got := 0
		lab.US1.BindUDP(443, func(p *packet.Packet) {
			if p.UDP.SrcPort == sport {
				got++
			}
		})
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, quicx.BuildInitial(quicx.Version1, 1200))
		for i := 0; i < 3; i++ {
			v.Stack.SendUDP(lab.US1.Addr(), sport, 443, []byte("post-trigger"))
		}
		lab.Sim.Run()
		// The trigger itself passes; blocked means the rest were dropped.
		return got < 4
	case tspu.IPBlock:
		port := v.Stack.EphemeralPort()
		v.Stack.Listen(port, hostnet.ListenOptions{})
		conn := lab.Tor.Dial(v.Stack.Addr(), port, hostnet.DialOptions{})
		lab.Sim.Run()
		blocked := conn.ResetSeen
		conn.Close()
		return blocked
	}
	return false
}

// Render prints Table 1.
func (r *ReliabilityResult) Render() string {
	t := report.NewTable(fmt.Sprintf("Table 1: TSPU trigger failure rates (%d trials/cell)", r.Trials),
		append([]string{"Vantage"}, ReliabilityCols...)...)
	for _, name := range Vantages {
		row := []any{name}
		for _, typ := range ReliabilityTypes {
			row = append(row, fmt.Sprintf("%.4f%%", 100*r.Failures[name][typ]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// ReliabilityConcurrent reruns the SNI-I cell with batched (overlapping)
// connections. §5.2.1: "We also tried different levels of concurrency but
// found no observable differences from sequential testing results" — the
// TSPU's per-flow state makes trials independent, which this verifies.
func ReliabilityConcurrent(lab *topo.Lab, vantage string, trials, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	v := vantageOf(lab, vantage)
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	fails := 0
	for done := 0; done < trials; {
		n := batch
		if done+n > trials {
			n = trials - done
		}
		conns := make([]*hostnet.TCPConn, n)
		for i := range conns {
			conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
			conn.OnEstablished = func() { conn.Send(CH(DomainSNI1)) }
			conns[i] = conn
		}
		lab.Sim.Run() // the whole batch shares the wire concurrently
		for _, conn := range conns {
			if !conn.ResetSeen {
				fails++
			}
			conn.Close()
		}
		done += n
	}
	return float64(fails) / float64(trials)
}
