package measure

import (
	"fmt"
	"strings"
	"time"

	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
)

// Op is one scripted packet in a sequence: which side sends and with what
// flags. The paper's notation: L=Local, R=Remote; s=SYN, sa=SYN/ACK, a=ACK.
type Op struct {
	Local bool
	Flags packet.TCPFlags
}

// The op vocabulary of §5.3.2.
var (
	Ls  = Op{true, packet.FlagSYN}
	Lsa = Op{true, packet.FlagsSYNACK}
	La  = Op{true, packet.FlagACK}
	Rs  = Op{false, packet.FlagSYN}
	Rsa = Op{false, packet.FlagsSYNACK}
	Ra  = Op{false, packet.FlagACK}
)

// OpName renders an op in the paper's notation.
func OpName(o Op) string {
	side := "R"
	if o.Local {
		side = "L"
	}
	switch o.Flags {
	case packet.FlagSYN:
		return side + "s"
	case packet.FlagsSYNACK:
		return side + "sa"
	case packet.FlagACK:
		return side + "a"
	}
	return side + "?"
}

// SeqString renders a sequence.
func SeqString(seq []Op) string {
	if len(seq) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(seq))
	for i, o := range seq {
		parts[i] = OpName(o)
	}
	return strings.Join(parts, ";")
}

// SeqVerdict classifies one prefix sequence (a Fig. 4 node).
type SeqVerdict struct {
	Seq []Op
	// SNI1Acts reports whether a following SNI-I trigger leads to RST/ACK
	// rewriting of downstream traffic.
	SNI1Acts bool
	// SNI4Acts reports whether a following SNI-I+IV trigger is itself
	// swallowed (the backup drop-all).
	SNI4Acts bool
	// TriggerDelivered reports whether the SNI-I trigger reached the remote.
	TriggerDelivered bool
}

// Green reports whether the sequence is a Fig. 4 "green node": it evades
// SNI-I but still trips the SNI-IV backup.
func (v SeqVerdict) Green() bool { return !v.SNI1Acts && v.SNI4Acts }

// playSeq scripts the prefix ops on a fresh flow.
func playSeq(f *Flow, seq []Op) {
	for _, op := range seq {
		if op.Local {
			f.L(op.Flags, nil)
		} else {
			f.R(op.Flags, nil)
		}
	}
}

// ClassifySequence tests one prefix sequence from a vantage, as §5.3.2 does:
// append a triggering ClientHello and observe the blocking behavior.
func ClassifySequence(lab *topo.Lab, vantage string, seq []Op) SeqVerdict {
	v := vantageOf(lab, vantage)
	verdict := SeqVerdict{Seq: seq}

	// SNI-I probe: trigger with an SNI-I-only domain, then a downstream
	// response; RST/ACK at the local side means SNI-I acted.
	f := NewFlow(lab, v.Stack, lab.US1, 443)
	playSeq(f, seq)
	f.L(packet.FlagsPSHACK, CH(DomainSNI1))
	verdict.TriggerDelivered = f.remoteDataCount() > 0
	f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
	if len(f.LocalGot) > 0 {
		last := f.LocalGot[len(f.LocalGot)-1]
		verdict.SNI1Acts = last.TCP.Flags.Has(packet.FlagRST)
	}
	f.Close()

	// SNI-IV probe: a domain under both SNI-I and SNI-IV. If neither the
	// trigger arrives remotely nor any downstream probe returns, the backup
	// drop-all fired.
	f2 := NewFlow(lab, v.Stack, lab.US2, 443)
	playSeq(f2, seq)
	f2.L(packet.FlagsPSHACK, CH(DomainSNI14))
	chDelivered := f2.remoteDataCount() > 0
	verdict.SNI4Acts = !chDelivered
	f2.Close()
	return verdict
}

// ExploreSequences enumerates all op sequences up to maxLen (the paper used
// 3) and classifies each — the Fig. 4 tree.
type ExploreResult struct {
	Verdicts []SeqVerdict
}

// ExploreSequences runs the full enumeration from a vantage.
func ExploreSequences(lab *topo.Lab, vantage string, maxLen int) *ExploreResult {
	ops := []Op{Ls, Lsa, La, Rs, Rsa, Ra}
	res := &ExploreResult{}
	var rec func(prefix []Op)
	rec = func(prefix []Op) {
		res.Verdicts = append(res.Verdicts, ClassifySequence(lab, vantage, prefix))
		if len(prefix) == maxLen {
			return
		}
		for _, op := range ops {
			rec(append(append([]Op{}, prefix...), op))
		}
	}
	rec(nil)
	return res
}

// Stats summarizes the exploration.
func (r *ExploreResult) Stats() (total, validSNI1, green, remoteFirstValid int) {
	for _, v := range r.Verdicts {
		total++
		if v.SNI1Acts {
			validSNI1++
			if len(v.Seq) > 0 && !v.Seq[0].Local {
				remoteFirstValid++
			}
		}
		if v.Green() {
			green++
		}
	}
	return
}

// Render prints the Fig. 4 summary plus every green sequence.
func (r *ExploreResult) Render() string {
	total, valid, green, remoteFirst := r.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 4: TSPU triggering sequences (length <= 3) ==\n")
	fmt.Fprintf(&b, "sequences tested:            %d\n", total)
	fmt.Fprintf(&b, "valid SNI-I prefixes:        %d\n", valid)
	fmt.Fprintf(&b, "remote-first valid prefixes: %d (paper: 0 — remote-first is never a valid prefix)\n", remoteFirst)
	fmt.Fprintf(&b, "green (evade SNI-I, hit SNI-IV backup): %d\n", green)
	for _, v := range r.Verdicts {
		if v.Green() {
			fmt.Fprintf(&b, "  green: %s\n", SeqString(v.Seq))
		}
	}
	return b.String()
}

// BlockCheck selects how "blocked" is decided after a trigger, matching the
// trigger domain class.
type BlockCheck int

// Block checks.
const (
	// CheckSNI1: downstream response rewritten to RST/ACK.
	CheckSNI1 BlockCheck = iota
	// CheckSNI2: upstream markers after the trigger get dropped.
	CheckSNI2
)

// TimeoutProbe measures whether blocking occurs for a sequence with a sleep
// inserted at sleepAt (ops before it play, then the clock advances, then the
// rest), per Fig. 5's protocol. Because devices miss a small fraction of
// triggers (Table 1), the probe retries on fresh flows: a single blocked
// observation is conclusive, repeated passes are.
func TimeoutProbe(lab *topo.Lab, vantage string, seq []Op, sleepAt int, sleep time.Duration, check BlockCheck) bool {
	for attempt := 0; attempt < 3; attempt++ {
		if timeoutProbeOnce(lab, vantage, seq, sleepAt, sleep, check) {
			return true
		}
	}
	return false
}

func timeoutProbeOnce(lab *topo.Lab, vantage string, seq []Op, sleepAt int, sleep time.Duration, check BlockCheck) bool {
	v := vantageOf(lab, vantage)
	f := NewFlow(lab, v.Stack, lab.US1, 443)
	defer f.Close()
	playSeq(f, seq[:sleepAt])
	f.Sleep(sleep)
	playSeq(f, seq[sleepAt:])
	switch check {
	case CheckSNI1:
		f.L(packet.FlagsPSHACK, CH(DomainSNI1))
		f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
		return f.LastLocalRST()
	default:
		f.L(packet.FlagsPSHACK, CH(DomainSNI2))
		before := len(f.RemoteGot)
		for i := 0; i < 12; i++ {
			f.L(packet.FlagsPSHACK, []byte("marker"))
		}
		return len(f.RemoteGot)-before < 12
	}
}

// EstimateTimeout bisects the sleep duration at which the blocking verdict
// flips, within [lo, hi] at 1-second resolution. It returns the estimated
// timeout and the verdicts at the extremes; ok is false when no transition
// exists in range.
func EstimateTimeout(lab *topo.Lab, vantage string, seq []Op, sleepAt int, check BlockCheck, lo, hi time.Duration) (time.Duration, bool) {
	atLo := TimeoutProbe(lab, vantage, seq, sleepAt, lo, check)
	atHi := TimeoutProbe(lab, vantage, seq, sleepAt, hi, check)
	if atLo == atHi {
		return 0, false
	}
	for hi-lo > time.Second {
		mid := (lo + hi) / 2
		if TimeoutProbe(lab, vantage, seq, sleepAt, mid, check) == atLo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, true
}

// BlockTimeoutProbe measures whether a previously-installed blocking state
// is still active after a sleep: trigger first, sleep, then probe. Retries
// absorb trigger-miss noise like TimeoutProbe.
func BlockTimeoutProbe(lab *topo.Lab, vantage string, domain string, sleep time.Duration, check BlockCheck) bool {
	for attempt := 0; attempt < 3; attempt++ {
		if blockTimeoutProbeOnce(lab, vantage, domain, sleep, check) {
			return true
		}
	}
	return false
}

func blockTimeoutProbeOnce(lab *topo.Lab, vantage string, domain string, sleep time.Duration, check BlockCheck) bool {
	v := vantageOf(lab, vantage)
	f := NewFlow(lab, v.Stack, lab.US1, 443)
	defer f.Close()
	f.L(packet.FlagSYN, nil)
	f.R(packet.FlagsSYNACK, nil)
	f.L(packet.FlagACK, nil)
	f.L(packet.FlagsPSHACK, CH(domain))
	f.Sleep(sleep)
	switch check {
	case CheckSNI1:
		f.R(packet.FlagsPSHACK, []byte("SERVERHELLO")) // probe downstream
		return f.LastLocalRST()
	default:
		before := len(f.RemoteGot)
		for i := 0; i < 12; i++ {
			f.L(packet.FlagsPSHACK, []byte("marker"))
		}
		return len(f.RemoteGot)-before < 12
	}
}

// EstimateBlockTimeout bisects how long a blocking state persists.
func EstimateBlockTimeout(lab *topo.Lab, vantage, domain string, check BlockCheck, lo, hi time.Duration) (time.Duration, bool) {
	atLo := BlockTimeoutProbe(lab, vantage, domain, lo, check)
	atHi := BlockTimeoutProbe(lab, vantage, domain, hi, check)
	if atLo == atHi {
		return 0, false
	}
	for hi-lo > time.Second {
		mid := (lo + hi) / 2
		if BlockTimeoutProbe(lab, vantage, domain, mid, check) == atLo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, true
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Label    string
	Timeout  time.Duration
	Found    bool
	State    string
	PaperVal time.Duration
}

// Table2 reproduces the state-timeout table. Measurements run from
// ER-Telecom, the single-device vantage, to avoid multi-device interactions
// (the paper TTL-limited triggers for the same reason, footnote 2).
func Table2(lab *topo.Lab) []Table2Row {
	v := topo.ERTelecom
	var rows []Table2Row
	add := func(label string, d time.Duration, ok bool, state string, paper time.Duration) {
		rows = append(rows, Table2Row{label, d, ok, state, paper})
	}

	// Remote.SYN; SLEEP; Local.SYN; Remote.SA; Local trigger -> SYN_SENT.
	d, ok := EstimateTimeout(lab, v, []Op{Rs, Ls, Rsa}, 1, CheckSNI2, time.Second, 600*time.Second)
	add("Remote SYN; SLEEP; Local.SYN; Remote.SA; Local Trigger", d, ok, "SYN_SENT", 60*time.Second)

	// Local.SYN; Remote.SYN; Local.A; SLEEP; trigger -> SYN_RCVD. Uses an
	// SNI-I domain: within the timeout the confused role exempts SNI-I.
	d, ok = EstimateTimeout(lab, v, []Op{Ls, Rs, La}, 3, CheckSNI1, time.Second, 600*time.Second)
	add("Local.SYN; Remote.SYN; Local.A; SLEEP; Local Trigger", d, ok, "SYN_RCVD", 105*time.Second)

	// Local.SYN; Remote.SA; SLEEP; Remote.ACK; trigger -> ESTABLISHED.
	d, ok = EstimateTimeout(lab, v, []Op{Ls, Rsa, Ra}, 2, CheckSNI2, time.Second, 600*time.Second)
	add("Local.SYN; Remote.SA; SLEEP; Remote.ACK; Local Trigger", d, ok, "ESTABLISHED", 480*time.Second)

	// Blocking-state holds.
	d, ok = EstimateBlockTimeout(lab, v, DomainSNI1, CheckSNI1, time.Second, 600*time.Second)
	add("Local Trigger(SNI-I); SLEEP", d, ok, "SNI-I", 75*time.Second)
	d, ok = EstimateBlockTimeout(lab, v, DomainSNI2, CheckSNI2, time.Second, 600*time.Second)
	add("Local Trigger(SNI-II); SLEEP", d, ok, "SNI-II", 420*time.Second)
	d, ok = estimateSNI4Timeout(lab, v)
	add("Local Trigger(SNI-IV); SLEEP", d, ok, "SNI-IV", 40*time.Second)
	d, ok = estimateQUICTimeout(lab, v)
	add("Local Trigger(QUIC); SLEEP", d, ok, "QUIC", 420*time.Second)
	return rows
}

// estimateSNI4Timeout installs the SNI-IV drop-all (split-handshake prefix)
// then bisects how long upstream packets stay dropped.
func estimateSNI4Timeout(lab *topo.Lab, vantage string) (time.Duration, bool) {
	probe := func(sleep time.Duration) bool {
		v := vantageOf(lab, vantage)
		f := NewFlow(lab, v.Stack, lab.US1, 443)
		defer f.Close()
		f.L(packet.FlagSYN, nil)
		f.R(packet.FlagSYN, nil) // split handshake: role confusion
		f.L(packet.FlagsSYNACK, nil)
		f.R(packet.FlagACK, nil)
		f.L(packet.FlagsPSHACK, CH(DomainSNI14)) // SNI-IV fires, drops all
		f.Sleep(sleep)
		before := len(f.RemoteGot)
		f.L(packet.FlagsPSHACK, []byte("marker"))
		return len(f.RemoteGot) == before // still dropping
	}
	return bisectBool(probe, time.Second, 600*time.Second)
}

func estimateQUICTimeout(lab *topo.Lab, vantage string) (time.Duration, bool) {
	v := vantageOf(lab, vantage)
	probe := func(sleep time.Duration) bool {
		sport := v.Stack.EphemeralPort()
		got := 0
		lab.US1.BindUDP(443, func(p *packet.Packet) {
			if p.UDP.SrcPort == sport {
				got++
			}
		})
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, quicTriggerPayload())
		lab.Sim.Run()
		lab.Sim.RunUntil(lab.Sim.Now() + sleep)
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, []byte("after-sleep"))
		lab.Sim.Run()
		return got < 2 // the post-sleep packet was dropped
	}
	return bisectBool(probe, time.Second, 600*time.Second)
}

func quicTriggerPayload() []byte {
	b := make([]byte, 1200)
	b[0] = 0xc0
	b[4] = 0x01
	return b
}

// bisectBool finds the 1-second boundary where probe flips.
func bisectBool(probe func(time.Duration) bool, lo, hi time.Duration) (time.Duration, bool) {
	atLo := probe(lo)
	if probe(hi) == atLo {
		return 0, false
	}
	for hi-lo > time.Second {
		mid := (lo + hi) / 2
		if probe(mid) == atLo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, true
}

// Table8Row is one row of Table 8.
type Table8Row struct {
	Seq      string
	Timeout  time.Duration
	Found    bool
	Action   string // PASS or DROP
	PaperVal time.Duration
	PaperAct string
}

// table8Sequences lists the 16 sequences of Table 8; the sleep goes after
// the prefix, before the trigger. (The paper's "Ss" row is read as "Rs".)
var table8Sequences = []struct {
	label    string
	seq      []Op
	paperVal int
	paperAct string
}{
	{"Lt", nil, 180, "DROP"},
	{"Rs;Lt", []Op{Rs}, 30, "PASS"},
	{"Rs;Ls;Lt", []Op{Rs, Ls}, 30, "PASS"},
	{"Ls;Rs;Lt", []Op{Ls, Rs}, 180, "DROP"},
	{"Rs;Ls;Rsa;Lt", []Op{Rs, Ls, Rsa}, 480, "PASS"},
	{"Rs;Ls;Lsa;Lt", []Op{Rs, Ls, Lsa}, 180, "PASS"},
	{"Rs;Ls;Rsa;Lsa;Lt", []Op{Rs, Ls, Rsa, Lsa}, 480, "PASS"},
	{"Ra;Lt", []Op{Ra}, 480, "PASS"},
	{"Ra;Lsa;Lt", []Op{Ra, Lsa}, 480, "PASS"},
	{"Lsa;Lt", []Op{Lsa}, 420, "DROP"},
	{"Rs;Lsa;Lt", []Op{Rs, Lsa}, 180, "PASS"},
	{"Ra;Lsa;Ra;Lt", []Op{Ra, Lsa, Ra}, 480, "PASS"},
	{"Rsa;Lt", []Op{Rsa}, 480, "PASS"},
	{"Ls;Ra;Lt", []Op{Ls, Ra}, 180, "PASS"},
	{"Rsa;Lsa;Lt", []Op{Rsa, Lsa}, 480, "PASS"},
	{"La;Lt", []Op{La}, 480, "DROP"},
}

// Table8 measures action and timeout for each listed sequence with an
// SNI-II trigger, as in the paper (t = SNI-II).
func Table8(lab *topo.Lab) []Table8Row {
	v := topo.ERTelecom
	var rows []Table8Row
	for _, s := range table8Sequences {
		blockedNow := TimeoutProbe(lab, v, s.seq, len(s.seq), 0, CheckSNI2)
		action := "PASS"
		if blockedNow {
			action = "DROP"
		}
		// Timeout: how long the prefix state persists — sleep between
		// prefix and trigger. For empty prefixes, measure the blocking
		// state's own timeout instead.
		var d time.Duration
		var ok bool
		if len(s.seq) == 0 {
			d, ok = EstimateBlockTimeout(lab, v, DomainSNI2, CheckSNI2, time.Second, 600*time.Second)
		} else {
			d, ok = EstimateTimeout(lab, v, s.seq, len(s.seq), CheckSNI2, time.Second, 600*time.Second)
		}
		rows = append(rows, Table8Row{
			Seq: s.label, Timeout: d, Found: ok, Action: action,
			PaperVal: time.Duration(s.paperVal) * time.Second, PaperAct: s.paperAct,
		})
	}
	return rows
}

// RenderTable2 prints Table 2 with paper-vs-measured columns.
func RenderTable2(rows []Table2Row) string {
	t := report.NewTable("Table 2: state timeout measurements (measured vs paper)",
		"Sequence", "State", "Measured", "Paper")
	for _, r := range rows {
		m := "none"
		if r.Found {
			m = fmt.Sprintf("%.0fs", r.Timeout.Seconds())
		}
		t.AddRow(r.Label, r.State, m, fmt.Sprintf("%.0fs", r.PaperVal.Seconds()))
	}
	return t.String()
}

// RenderTable8 prints Table 8.
func RenderTable8(rows []Table8Row) string {
	t := report.NewTable("Table 8: sequence timeout estimates (measured vs paper)",
		"Sequence", "Action", "Paper-Action", "Timeout", "Paper-Timeout")
	for _, r := range rows {
		m := "none"
		if r.Found {
			m = fmt.Sprintf("%.0fs", r.Timeout.Seconds())
		}
		t.AddRow(r.Seq, r.Action, r.PaperAct, m, fmt.Sprintf("%.0fs", r.PaperVal.Seconds()))
	}
	return t.String()
}
