package measure

import (
	"fmt"
	"net/netip"
	"time"

	"tspusim/internal/engine"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/sim"
	"tspusim/internal/tspu"
)

// State exhaustion at scale (§5.3.3, §7, §8). The topo.Lab version of this
// experiment (StateExhaustion) floods a device with a few thousand flows
// through full host stacks; this one drives the batch engine directly, so the
// flood reaches the scale the paper's provisioning argument is actually
// about: millions of concurrent flows with timeout churn, against a sharded
// flow table. The questions it answers are the same — does a residual-
// censorship hold survive a flood at a given provisioning level — plus the
// ones only visible at scale: does the table hold peak concurrency without
// leaking, does steady-state churn run on recycled entries, and does every
// byte of state drain once the flood ages out.

// ExhaustScaleConfig sizes the flood. The defaults in DefaultExhaustScale
// reach ~2M concurrent flows; tests shrink Rate to run in milliseconds.
type ExhaustScaleConfig struct {
	// Seed feeds the device's per-flow randomness.
	Seed uint64
	// Rate is the offered load in new flows per virtual second.
	Rate int
	// Duration is the flood length in virtual time. It must stay below the
	// SNI-I hold lifetime (75 s) so the survival probe measures eviction
	// pressure, not the hold's own clock; and above the SYN-sent timeout
	// (60 s) so the tail of the flood churns through expired entries.
	Duration time.Duration
	// Bounds are the flow-table provisioning levels to test (0 = unlimited).
	Bounds []int
	// Shards and BatchSize shape the engine; zero values take the defaults
	// (8 shards, 512-packet batches).
	Shards    int
	BatchSize int
}

// DefaultExhaustScale is the paper-scale run: 35k flows/s for 70 virtual
// seconds is 2.45M flows offered with a ~2.1M-flow concurrency plateau once
// the 60 s SYN timeout starts reclaiming the flood's tail.
func DefaultExhaustScale() ExhaustScaleConfig {
	return ExhaustScaleConfig{
		Seed:     1,
		Rate:     35000,
		Duration: 70 * time.Second,
		Bounds:   []int{0, 1 << 22, 1 << 18, 1 << 14},
	}
}

// ExhaustScaleRow is one provisioning level's outcome.
type ExhaustScaleRow struct {
	MaxFlows int // 0 = unlimited
	// Offered counts flood flows pushed through the engine.
	Offered int
	// PeakTable is the largest concurrent flow-table population observed.
	PeakTable int
	// Survived reports whether the victim's SNI-I hold still rewrote a
	// downstream probe to RST/ACK after the flood.
	Survived bool
	// PressureEvictions counts entries evicted to make room (capacity FIFO);
	// TimeoutEvictions counts entries reclaimed by the timeout wheel and lazy
	// expiry — the churn path.
	PressureEvictions int
	TimeoutEvictions  int
	// PoolAllocs and PoolReuses are the entry-pool counters: allocations
	// track peak concurrency, and everything past the plateau must be served
	// by reuse.
	PoolAllocs int
	PoolReuses int
	// Leaked is the table population after the flood fully aged out and a
	// final sweep ran; nonzero means state outlived every timeout.
	Leaked int
}

// ExhaustScaleResult is the full provisioning table.
type ExhaustScaleResult struct {
	Config ExhaustScaleConfig
	Rows   []ExhaustScaleRow
}

// victim five-tuple, outside the flood's address space.
var (
	exhaustVictimSrc = netip.AddrFrom4([4]byte{10, 200, 0, 2})
	exhaustVictimDst = netip.AddrFrom4([4]byte{203, 0, 113, 10})
	exhaustFloodDst  = netip.AddrFrom4([4]byte{198, 18, 0, 1})
)

// StateExhaustionAtScale runs the flood once per provisioning bound, each
// against a fresh device and engine so rows are independent.
func StateExhaustionAtScale(cfg ExhaustScaleConfig) *ExhaustScaleResult {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	res := &ExhaustScaleResult{Config: cfg}
	for _, bound := range cfg.Bounds {
		res.Rows = append(res.Rows, exhaustScaleRow(cfg, bound))
	}
	return res
}

func exhaustScaleRow(cfg ExhaustScaleConfig, bound int) ExhaustScaleRow {
	s := sim.New()
	dev := tspu.NewDevice(tspu.Config{
		Name:        "exhaust",
		Sim:         s,
		LocalDir:    netem.AtoB,
		Shards:      cfg.Shards,
		PerFlowRand: true,
		FlowSeed:    cfg.Seed,
	})
	ctl := tspu.NewController(nil)
	ctl.Register(dev)
	ctl.Update(func(p *tspu.Policy) { p.SNI1Domains.Add(DomainSNI1) })
	dev.SetMaxFlows(bound)
	dev.EnableAutoSweep(time.Second)
	e := engine.New(engine.Config{Sim: s, Devices: []*tspu.Device{dev}, BatchSize: cfg.BatchSize})

	// Install the victim hold: handshake, then a triggering ClientHello. No
	// FailureRates are configured, so the trigger fires deterministically.
	vSport := uint16(40001)
	push := func(p *packet.Packet, dir netem.Direction) netem.Action {
		e.Push(p, dir)
		return e.Process()[0].Verdict
	}
	push(packet.NewTCP(exhaustVictimSrc, exhaustVictimDst, vSport, 443, packet.FlagSYN, 1, 0, nil), netem.AtoB)
	push(packet.NewTCP(exhaustVictimDst, exhaustVictimSrc, 443, vSport, packet.FlagsSYNACK, 1, 2, nil), netem.BtoA)
	push(packet.NewTCP(exhaustVictimSrc, exhaustVictimDst, vSport, 443, packet.FlagsPSHACK, 2, 2, CH(DomainSNI1)), netem.AtoB)
	if !exhaustProbe(e, vSport) {
		// The hold must be in place before the flood for the row to mean
		// anything; with no failure rates this cannot happen.
		panic("exhaustscale: SNI-I hold not installed on the victim flow")
	}

	// Flood: unique host pairs at cfg.Rate flows per virtual second, the
	// clock advancing per batch so the SYN-sent timeout churns the tail. The
	// batch's packet structs are reused — only the source address changes —
	// so the experiment measures the device's allocation behavior, not the
	// load generator's.
	row := ExhaustScaleRow{MaxFlows: bound}
	batch := make([]*packet.Packet, cfg.BatchSize)
	for i := range batch {
		batch[i] = packet.NewTCP(exhaustVictimSrc, exhaustFloodDst, 30000, 80, packet.FlagSYN, 1, 0, nil)
	}
	start := s.Now()
	step := time.Duration(float64(cfg.BatchSize) / float64(cfg.Rate) * float64(time.Second))
	total := cfg.Rate * int(cfg.Duration/time.Second)
	for n := 0; n < total; {
		m := len(batch)
		if total-n < m {
			m = total - n
		}
		for j := 0; j < m; j++ {
			f := n + j
			batch[j].IP.Src = netip.AddrFrom4([4]byte{10, byte(f >> 16), byte(f >> 8), byte(f)})
			e.Push(batch[j], netem.AtoB)
		}
		e.Process()
		n += m
		// RunUntil, not engine.Advance: the flood schedules no events, so the
		// clock must be moved explicitly for timeouts to churn the tail.
		s.RunUntil(start + time.Duration(n/cfg.BatchSize)*step)
		if sz := dev.ConntrackSize(); sz > row.PeakTable {
			row.PeakTable = sz
		}
	}
	row.Offered = total

	// Probe the hold, then age everything out and sweep: the table must
	// return to empty (the victim's own entry included) or state leaked.
	row.Survived = exhaustProbe(e, vSport)
	s.RunUntil(s.Now() + 600*time.Second)
	dev.Sweep()
	row.Leaked = dev.ConntrackSize()
	row.PressureEvictions = dev.PressureEvictions()
	row.TimeoutEvictions = dev.ConntrackEvictions()
	allocs, reuses, _ := dev.ConntrackPoolStats()
	row.PoolAllocs = int(allocs)
	row.PoolReuses = int(reuses)
	return row
}

// exhaustProbe sends a downstream data packet on the victim flow and reports
// whether the device rewrote it to RST/ACK — the SNI-I hold's signature. The
// probe packet passes either way, so probing does not perturb the flow.
func exhaustProbe(e *engine.Engine, sport uint16) bool {
	p := packet.NewTCP(exhaustVictimDst, exhaustVictimSrc, 443, sport, packet.FlagsPSHACK, 100, 3, []byte("probe"))
	e.Push(p, netem.BtoA)
	e.Process()
	return p.TCP.Flags == packet.FlagsRSTACK
}

// Render prints the provisioning table.
func (r *ExhaustScaleResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("State exhaustion at scale (§8): SNI-I hold vs %d flows/s x %v flood",
			r.Config.Rate, r.Config.Duration),
		"Flow-table bound", "Offered", "Peak table", "Hold survived",
		"Pressure evict", "Timeout evict", "Pool allocs", "Pool reuses", "Leaked")
	for _, row := range r.Rows {
		bound := "unlimited"
		if row.MaxFlows > 0 {
			bound = fmt.Sprint(row.MaxFlows)
		}
		t.AddRow(bound, row.Offered, row.PeakTable, row.Survived,
			row.PressureEvictions, row.TimeoutEvictions, row.PoolAllocs, row.PoolReuses, row.Leaked)
	}
	return t.String() +
		"paper: provisioning is the evasion surface — a bounded table sheds the\n" +
		"oldest state under flood, and the residual-censorship hold goes with it;\n" +
		"at adequate provisioning the hold rides out millions of attacker flows.\n"
}
