package measure

import (
	"fmt"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
)

// ExhaustResult quantifies §8's provisioning question: how large a
// flow-table bound keeps blocking state alive through a state-exhaustion
// flood of a given size.
type ExhaustResult struct {
	FloodFlows int
	// Rows: per table bound, did the SNI-I hold survive the flood?
	Rows []ExhaustRow
}

// ExhaustRow is one provisioning level.
type ExhaustRow struct {
	MaxFlows  int // 0 = unlimited
	Survived  bool
	Evictions int
}

// StateExhaustion blocks a connection, floods the vantage's device with
// unrelated flows, and tests whether the blocking state survived — repeated
// across provisioning levels. An attacker-controlled client can free itself
// from residual censorship exactly when the device is under-provisioned.
func StateExhaustion(lab *topo.Lab) *ExhaustResult {
	const flood = 3000
	res := &ExhaustResult{FloodFlows: flood}
	v := vantageOf(lab, topo.ERTelecom)
	dev := v.Devices[0]
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})

	for _, bound := range []int{0, 100000, 10000, 1000, 256} {
		dev.SetMaxFlows(bound)
		before := dev.PressureEvictions()

		conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
		ch := CH(DomainSNI1)
		conn.OnEstablished = func() { conn.Send(ch) }
		lab.Sim.Run()
		if !conn.ResetSeen {
			// Trigger-miss noise: retry once.
			conn.Close()
			conn = v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
			ch2 := CH(DomainSNI1)
			conn.OnEstablished = func() { conn.Send(ch2) }
			lab.Sim.Run()
		}

		for i := 0; i < flood; i++ {
			v.Stack.SendTCP(lab.US1.Addr(), v.Stack.EphemeralPort(), 80, packet.FlagSYN, 1, 0, nil)
		}
		lab.Sim.Run()

		// Downstream probe: rewritten => the hold survived.
		seen := len(conn.Packets)
		lab.US1.SendTCP(conn.LocalAddr, 443, conn.LocalPort, packet.FlagsPSHACK, 9000, 1, []byte("probe"))
		lab.Sim.Run()
		survived := false
		if len(conn.Packets) > seen {
			survived = conn.Packets[len(conn.Packets)-1].TCP.Flags.Has(packet.FlagRST)
		}
		conn.Close()
		res.Rows = append(res.Rows, ExhaustRow{
			MaxFlows:  bound,
			Survived:  survived,
			Evictions: dev.PressureEvictions() - before,
		})
	}
	dev.SetMaxFlows(0)
	return res
}

// Render prints the provisioning table.
func (r *ExhaustResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("State exhaustion (§8): SNI-I hold vs %d-flow flood", r.FloodFlows),
		"Flow-table bound", "Blocking survived", "Pressure evictions")
	for _, row := range r.Rows {
		bound := "unlimited"
		if row.MaxFlows > 0 {
			bound = fmt.Sprint(row.MaxFlows)
		}
		t.AddRow(bound, row.Survived, row.Evictions)
	}
	return t.String() +
		"paper: the TSPU trades evasion-resistance for cheap hardware near users;\n" +
		"an under-provisioned flow table converts that trade-off into an evasion.\n"
}
