package measure

import (
	"fmt"
	"net/netip"

	"tspusim/internal/dnsx"
	"tspusim/internal/hostnet"
	"tspusim/internal/httpx"
	"tspusim/internal/ispdpi"
	"tspusim/internal/report"
	"tspusim/internal/topo"
	"tspusim/internal/workload"
)

// WebVerdict classifies one OONI-style web connectivity test.
type WebVerdict int

// Verdicts, ordered roughly by protocol layer.
const (
	// WebOK: DNS, TCP, TLS, and HTTP all behaved.
	WebOK WebVerdict = iota
	// WebDNSBlockpage: the ISP resolver answered with its blockpage (the
	// pre-2019 decentralized mechanism).
	WebDNSBlockpage
	// WebDNSFailure: no usable DNS answer.
	WebDNSFailure
	// WebTLSReset: the TLS handshake died on an injected RST (SNI-I).
	WebTLSReset
	// WebHTTPAnomaly: HTTP connected but the transfer failed or truncated.
	WebHTTPAnomaly
)

func (v WebVerdict) String() string {
	switch v {
	case WebOK:
		return "ok"
	case WebDNSBlockpage:
		return "dns-blockpage"
	case WebDNSFailure:
		return "dns-failure"
	case WebTLSReset:
		return "tls-reset"
	case WebHTTPAnomaly:
		return "http-anomaly"
	}
	return "?"
}

// WebTest is one domain's outcome.
type WebTest struct {
	Domain  string
	Verdict WebVerdict
	// BlockpageISP is the fingerprinted ISP when Verdict is WebDNSBlockpage.
	BlockpageISP string
	// Resolved is the answered address.
	Resolved netip.Addr
}

// WebConnectivityResult aggregates a run.
type WebConnectivityResult struct {
	Vantage string
	Tests   []WebTest
}

// WebConnectivity runs the full layered test from a vantage for each
// domain: ISP DNS resolution (with blockpage fetch + fingerprint when the
// answer looks censored), then a TLS ClientHello to the resolved address,
// then an HTTP fetch. It reproduces what a Russian OONI probe measures:
// ISP-level DNS censorship and TSPU-level SNI censorship layered on the
// same sites (§6.2/§6.3).
func WebConnectivity(lab *topo.Lab, vantage string, domains []workload.Domain) *WebConnectivityResult {
	v := vantageOf(lab, vantage)
	res := &WebConnectivityResult{Vantage: vantage}
	dns := dnsx.NewClient(v.Stack, v.ResolverAddr)
	web := &httpx.Client{Stack: v.Stack, Run: lab.Sim.Run}

	for _, d := range domains {
		t := WebTest{Domain: d.Name}
		var answer netip.Addr
		dns.Lookup(d.Name, func(m *dnsx.Message) {
			if len(m.Answers) > 0 {
				answer = m.Answers[0].Addr
			}
		})
		lab.Sim.Run()
		if !answer.IsValid() {
			t.Verdict = WebDNSFailure
			res.Tests = append(res.Tests, t)
			continue
		}
		t.Resolved = answer

		// Fetch over HTTP first: a blockpage answer serves the ISP's page.
		got := web.Get(answer, 80, d.Name, "/")
		if got.Response != nil {
			if isp, ok := ispdpi.FingerprintBlockpage(got.Response.Body); ok {
				t.Verdict = WebDNSBlockpage
				t.BlockpageISP = isp
				res.Tests = append(res.Tests, t)
				continue
			}
		}

		// TLS layer: ClientHello toward the resolved address.
		conn := v.Stack.Dial(answer, 443, hostnet.DialOptions{})
		ch := CH(d.Name)
		conn.OnEstablished = func() { conn.Send(ch) }
		lab.Sim.Run()
		tlsReset := conn.ResetSeen
		tlsOK := len(conn.Received) > 0 && !conn.ResetSeen
		conn.Close()

		switch {
		case tlsReset:
			t.Verdict = WebTLSReset
		case got.Response == nil || got.Truncated:
			t.Verdict = WebHTTPAnomaly
		case !tlsOK:
			t.Verdict = WebHTTPAnomaly
		default:
			t.Verdict = WebOK
		}
		res.Tests = append(res.Tests, t)
	}
	return res
}

// Counts tallies verdicts.
func (r *WebConnectivityResult) Counts() map[WebVerdict]int {
	out := map[WebVerdict]int{}
	for _, t := range r.Tests {
		out[t.Verdict]++
	}
	return out
}

// Render prints the verdict distribution and the layering summary.
func (r *WebConnectivityResult) Render() string {
	counts := r.Counts()
	t := report.NewTable(
		fmt.Sprintf("Web connectivity from %s (%d domains)", r.Vantage, len(r.Tests)),
		"Verdict", "Count", "Meaning")
	t.AddRow(WebOK.String(), counts[WebOK], "uncensored")
	t.AddRow(WebDNSBlockpage.String(), counts[WebDNSBlockpage], "ISP resolver blockpage (decentralized mechanism)")
	t.AddRow(WebTLSReset.String(), counts[WebTLSReset], "TSPU SNI-I reset (centralized mechanism)")
	t.AddRow(WebHTTPAnomaly.String(), counts[WebHTTPAnomaly], "transfer failed/truncated")
	t.AddRow(WebDNSFailure.String(), counts[WebDNSFailure], "no DNS answer")
	return t.String() +
		"tls-reset with clean DNS is the TSPU's signature: blocking the ISP never deployed\n"
}
