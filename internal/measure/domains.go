package measure

import (
	"fmt"
	"sort"
	"strings"

	"tspusim/internal/dnsx"
	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
	"tspusim/internal/workload"
)

// DomainVerdict is one domain's outcome across mechanisms.
type DomainVerdict struct {
	Domain workload.Domain
	// TSPUBlocked: SNI-based blocking observed from the vantage.
	TSPUBlocked bool
	// ISPBlocked[name]: the ISP's resolver returned its blockpage.
	ISPBlocked map[string]bool
}

// SurveyResult is the §6 survey over one input list.
type SurveyResult struct {
	List     string
	Verdicts []DomainVerdict
}

// DomainSurvey tests every domain in list for TSPU SNI blocking (ClientHello
// from a vantage to the US measurement machine) and for ISP DNS blocking
// (query to each ISP's resolver, §6.2). TSPU verdicts are measured from one
// vantage; §5.1's uniformity (tested separately) makes that sufficient.
func DomainSurvey(lab *topo.Lab, listName string, list []workload.Domain) *SurveyResult {
	res := &SurveyResult{List: listName}
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	v := vantageOf(lab, topo.ERTelecom)

	// DNS clients per ISP.
	clients := map[string]*dnsx.Client{}
	for name, vp := range lab.Vantages {
		clients[name] = dnsx.NewClient(vp.Stack, vp.ResolverAddr)
	}

	for _, d := range list {
		verdict := DomainVerdict{Domain: d, ISPBlocked: make(map[string]bool)}

		conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
		ch := CH(d.Name)
		conn.OnEstablished = func() { conn.Send(ch) }
		lab.Sim.Run()
		verdict.TSPUBlocked = conn.ResetSeen
		conn.Close()

		for name, vp := range lab.Vantages {
			var blocked bool
			clients[name].Lookup(d.Name, func(m *dnsx.Message) {
				blocked = len(m.Answers) > 0 && m.Answers[0].Addr == vp.Blockpage
			})
			lab.Sim.Run()
			verdict.ISPBlocked[name] = blocked
		}
		res.Verdicts = append(res.Verdicts, verdict)
	}
	return res
}

// Counts summarizes blocked-set sizes (the Fig. 6 set diagram).
func (r *SurveyResult) Counts() (tspu int, perISP map[string]int, tspuOnly int) {
	perISP = make(map[string]int)
	for _, v := range r.Verdicts {
		anyISP := false
		for name, b := range v.ISPBlocked {
			if b {
				perISP[name]++
				anyISP = true
			}
		}
		if v.TSPUBlocked {
			tspu++
			if !anyISP {
				tspuOnly++
			}
		}
	}
	return
}

// Render prints the Fig. 6 comparison.
func (r *SurveyResult) Render() string {
	tspu, perISP, tspuOnly := r.Counts()
	t := report.NewTable(fmt.Sprintf("Fig. 6: domains blocked (%s, %d tested)", r.List, len(r.Verdicts)),
		"Mechanism", "Blocked")
	t.AddRow("TSPU (uniform across ISPs)", tspu)
	for _, name := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
		t.AddRow("resolver "+name, perISP[name])
	}
	t.AddRow("TSPU only (out-registry or ISP lag)", tspuOnly)
	return t.String()
}

// CategoryBreakdown runs the Fig. 7 pipeline: LDA-categorize the list and
// count all-vs-TSPU-blocked per category.
type CategoryBreakdown struct {
	All, Blocked map[workload.Category]int
}

// Categories computes Fig. 7 from a survey result. It re-labels domains with
// the LDA pipeline (topics, iters control fit effort) rather than trusting
// generator ground truth, exactly as the paper had to.
func Categories(lab *topo.Lab, r *SurveyResult, topics, iters int) *CategoryBreakdown {
	ds := make([]workload.Domain, len(r.Verdicts))
	for i, v := range r.Verdicts {
		ds[i] = v.Domain
	}
	labels := workload.CategorizeDomains(lab.Rand.Fork("fig7"), ds, topics, iters)
	cb := &CategoryBreakdown{
		All:     make(map[workload.Category]int),
		Blocked: make(map[workload.Category]int),
	}
	for i, v := range r.Verdicts {
		cb.All[labels[i]]++
		if v.TSPUBlocked {
			cb.Blocked[labels[i]]++
		}
	}
	return cb
}

// Render prints Fig. 7.
func (cb *CategoryBreakdown) Render() string {
	t := report.NewTable("Fig. 7: domain categories (LDA-labelled)", "Category", "All Sites", "Blocked by TSPU")
	cats := append(workload.Categories(), workload.CatErrorPage)
	for _, c := range cats {
		if cb.All[c] == 0 && cb.Blocked[c] == 0 {
			continue
		}
		t.AddRow(c.String(), cb.All[c], cb.Blocked[c])
	}
	return t.String()
}

// Table3Result maps the paper's named domains to their observed behaviors.
type Table3Result struct {
	Rows []Table3Row
}

// Table3Row is one domain's behavior classification.
type Table3Row struct {
	Domain                string
	SNI1, SNI2, SNI4      bool
	ExpectedSNI1          bool
	ExpectedSNI2          bool
	ExpectedSNI4          bool
	MatchesPaperBehaviors bool
}

// Table3 probes each well-known domain for all SNI behavior types.
func Table3(lab *topo.Lab) *Table3Result {
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	us2 := lab.US2.Listen(443, hostnet.ListenOptions{SplitHandshake: true})
	v := vantageOf(lab, topo.ERTelecom)
	res := &Table3Result{}
	for _, wk := range workload.WellKnownDomains() {
		row := Table3Row{Domain: wk.Name, ExpectedSNI1: wk.SNI1, ExpectedSNI2: wk.SNI2, ExpectedSNI4: wk.SNI4}

		// SNI-I: RST on a normal connection. Retry for failure-injection.
		for i := 0; i < 3 && !row.SNI1; i++ {
			conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
			ch := CH(wk.Name)
			conn.OnEstablished = func() { conn.Send(ch) }
			lab.Sim.Run()
			row.SNI1 = conn.ResetSeen
			conn.Close()
		}

		// SNI-II: markers dropped after the trigger on a raw flow.
		for i := 0; i < 3 && !row.SNI2; i++ {
			row.SNI2 = sni2Probe(lab, v, wk.Name)
		}

		// SNI-IV: split handshake, CH swallowed.
		for i := 0; i < 3 && !row.SNI4; i++ {
			conn := v.Stack.Dial(lab.US2.Addr(), 443, hostnet.DialOptions{})
			ch := CH(wk.Name)
			conn.OnEstablished = func() { conn.Send(ch) }
			lab.Sim.Run()
			delivered := false
			for _, sc := range us2.Conns {
				if sc.RemotePort == conn.LocalPort && len(sc.Received) > 0 {
					delivered = true
				}
			}
			row.SNI4 = !delivered
			conn.Close()
		}

		row.MatchesPaperBehaviors = row.SNI1 == wk.SNI1 && row.SNI2 == wk.SNI2 && row.SNI4 == wk.SNI4
		res.Rows = append(res.Rows, row)
	}
	return res
}

func sni2Probe(lab *topo.Lab, v *topo.Vantage, domain string) bool {
	f := NewFlow(lab, v.Stack, lab.US1, 443)
	defer f.Close()
	f.L(packet.FlagSYN, nil)
	f.R(packet.FlagsSYNACK, nil)
	f.L(packet.FlagACK, nil)
	f.L(packet.FlagsPSHACK, CH(domain))
	before := len(f.RemoteGot)
	for i := 0; i < 12; i++ {
		f.L(packet.FlagsPSHACK, []byte("marker"))
	}
	return len(f.RemoteGot)-before < 12
}

// Render prints Table 3.
func (r *Table3Result) Render() string {
	t := report.NewTable("Table 3: blocking types for named domains (measured vs paper)",
		"Domain", "SNI-I", "SNI-II", "SNI-IV", "Matches paper")
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return "-"
	}
	for _, row := range r.Rows {
		t.AddRow(row.Domain, mark(row.SNI1), mark(row.SNI2), mark(row.SNI4), row.MatchesPaperBehaviors)
	}
	return t.String()
}

// Venn computes the Fig. 6 set diagram exactly: for every domain, which of
// the four blockers {TSPU, rostelecom, ertelecom, obit} caught it, counted
// per region of the 4-set Venn. Keys are "+"-joined sorted member names;
// unblocked domains land in "(none)".
func (r *SurveyResult) Venn() map[string]int {
	out := map[string]int{}
	for _, v := range r.Verdicts {
		var members []string
		if v.TSPUBlocked {
			members = append(members, "tspu")
		}
		for _, isp := range []string{topo.ERTelecom, topo.OBIT, topo.Rostelecom} {
			if v.ISPBlocked[isp] {
				members = append(members, isp)
			}
		}
		key := "(none)"
		if len(members) > 0 {
			sort.Strings(members)
			key = strings.Join(members, "+")
		}
		out[key]++
	}
	return out
}

// RenderVenn prints the region counts, largest first.
func (r *SurveyResult) RenderVenn() string {
	venn := r.Venn()
	keys := make([]string, 0, len(venn))
	for k := range venn {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if venn[keys[i]] != venn[keys[j]] {
			return venn[keys[i]] > venn[keys[j]]
		}
		return keys[i] < keys[j]
	})
	t := report.NewTable(fmt.Sprintf("Fig. 6 Venn regions (%s)", r.List), "Region", "Domains")
	for _, k := range keys {
		t.AddRow(k, venn[k])
	}
	return t.String()
}
