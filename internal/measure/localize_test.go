package measure

import (
	"strings"
	"testing"

	"tspusim/internal/topo"
)

// TestTTLLocalize pins the §7.1 hop localization for each vantage: the
// TTL-limited trigger must first latch at exactly the hop the topology
// placed the symmetric device behind, and the control handshake at full TTL
// must not perturb the result.
func TestTTLLocalizeTable(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 41, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	cases := []struct {
		vantage    string
		triggerTTL int
	}{
		{topo.Rostelecom, 2},
		{topo.ERTelecom, 2},
		{topo.OBIT, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.vantage, func(t *testing.T) {
			res := TTLLocalize(lab, tc.vantage, 12)
			if res.TriggerTTL != tc.triggerTTL {
				t.Errorf("TriggerTTL = %d, want %d (paper: within the first three hops)",
					res.TriggerTTL, tc.triggerTTL)
			}
			want := lab.Vantages[tc.vantage].SymDeviceHop
			if res.TriggerTTL != want {
				t.Errorf("TriggerTTL = %d disagrees with topology's SymDeviceHop = %d",
					res.TriggerTTL, want)
			}
			if !strings.Contains(res.Render(), "between hop") {
				t.Errorf("Render() missing hop bracket: %q", res.Render())
			}
		})
	}
}

// TestTTLLocalizeNoDevice: a path without any TSPU must report none rather
// than a phantom hop.
func TestTTLLocalizeNoDevice(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 41, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	// A short TTL horizon that cannot reach the device looks like no TSPU.
	res := TTLLocalize(lab, topo.ERTelecom, 1)
	if res.TriggerTTL != 0 {
		t.Fatalf("TriggerTTL = %d, want 0 with a 1-hop horizon", res.TriggerTTL)
	}
	if !strings.Contains(res.Render(), "no TSPU found") {
		t.Errorf("Render() = %q, want a no-TSPU report", res.Render())
	}
}

// TestPartialVisibility pins the Fig. 8 (left) echo experiment: only the
// vantages the topology equips with an upstream-only second device detect
// one, and at the expected hop.
func TestPartialVisibilityTable(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 41, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	cases := []struct {
		vantage string
		ttls    []int
	}{
		// Rostelecom and OBIT carry an upstream-only device one hop past the
		// symmetric one (§7.1.1); ER-Telecom has a single symmetric device,
		// which stays exempt because the flow is remote-originated.
		{topo.Rostelecom, []int{3}},
		{topo.ERTelecom, nil},
		{topo.OBIT, []int{3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.vantage, func(t *testing.T) {
			res := PartialVisibility(lab, tc.vantage, 12)
			if len(res.UpstreamOnlyTTLs) != len(tc.ttls) {
				t.Fatalf("UpstreamOnlyTTLs = %v, want %v", res.UpstreamOnlyTTLs, tc.ttls)
			}
			for i, want := range tc.ttls {
				if res.UpstreamOnlyTTLs[i] != want {
					t.Errorf("UpstreamOnlyTTLs[%d] = %d, want %d", i, res.UpstreamOnlyTTLs[i], want)
				}
			}
			rendered := res.Render()
			if len(tc.ttls) == 0 && !strings.Contains(rendered, "none detected") {
				t.Errorf("Render() = %q, want none detected", rendered)
			}
			if len(tc.ttls) > 0 && !strings.Contains(rendered, "upstream-only device between hop") {
				t.Errorf("Render() = %q, want an upstream-only report", rendered)
			}
		})
	}
}
