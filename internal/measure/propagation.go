package measure

import (
	"fmt"
	"sort"

	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

// PropagationResult measures the temporal uniformity that first revealed
// the TSPU (§2): when Roskomnadzor adds a domain, blocking begins at every
// vantage within the control plane's jitter window — seconds — while ISP
// resolver blocklists lag by days (Fig. 6's counts are the standing result
// of that lag).
type PropagationResult struct {
	Domain string
	Jitter time.Duration
	// Onset[vantage] is the virtual time after the push at which blocking
	// was first observed; -1 if never.
	Onset map[string]time.Duration
	// ISPResolverAdopted[vantage] reports whether the ISP's own resolver
	// ever blocked the domain in the observation window (it should not —
	// this is a fresh out-of-registry push).
	ISPResolverAdopted map[string]bool
}

// PolicyPropagation pushes a brand-new domain with jittered installs, then
// probes every vantage each virtual second until all block.
func PolicyPropagation(lab *topo.Lab, jitter time.Duration) *PropagationResult {
	const domain = "freshly-banned.example"
	res := &PropagationResult{
		Domain: domain, Jitter: jitter,
		Onset:              map[string]time.Duration{},
		ISPResolverAdopted: map[string]bool{},
	}
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	vantages := []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT}
	for _, v := range vantages {
		res.Onset[v] = -1
	}

	lab.Sim.Run() // settle any pending lab activity before the push
	// Sanity: unblocked everywhere before the push.
	for _, v := range vantages {
		if probeBlocked(lab, v, domain) {
			return res // already blocked: caller misused the lab
		}
	}

	pushAt := lab.Sim.Now()
	lab.Controller.UpdateStaggered(lab.Sim, lab.Rand.Fork("push"), jitter, func(p *tspu.Policy) {
		p.SNI1Domains.Add(domain)
	})

	deadline := pushAt + jitter + 30*time.Second
	for lab.Sim.Now() < deadline {
		lab.Sim.RunUntil(lab.Sim.Now() + time.Second)
		done := true
		for _, v := range vantages {
			if res.Onset[v] >= 0 {
				continue
			}
			if probeBlocked(lab, v, domain) {
				res.Onset[v] = lab.Sim.Now() - pushAt
			} else {
				done = false
			}
		}
		if done {
			break
		}
	}
	for _, v := range vantages {
		res.ISPResolverAdopted[v] = lab.Vantages[v].ISPBlocklist.Contains(domain)
	}
	return res
}

// probeBlocked tests one vantage for SNI-I blocking of domain, with a retry
// to ride out trigger-miss noise. It advances the clock by bounded slices
// only — a full Run() would also execute the pending (future) policy
// installs and destroy the very timing this experiment measures.
func probeBlocked(lab *topo.Lab, vantage, domain string) bool {
	v := lab.Vantages[vantage]
	for attempt := 0; attempt < 2; attempt++ {
		conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
		ch := CH(domain)
		conn.OnEstablished = func() { conn.Send(ch) }
		lab.Sim.RunUntil(lab.Sim.Now() + 200*time.Millisecond)
		blocked := conn.ResetSeen
		conn.Close()
		if blocked {
			return true
		}
	}
	return false
}

// Render prints the onset table.
func (r *PropagationResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Policy propagation: %q pushed with %v jitter", r.Domain, r.Jitter),
		"Vantage", "Blocking onset", "ISP resolver adopted")
	keys := make([]string, 0, len(r.Onset))
	for k := range r.Onset {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var onsets []time.Duration
	for _, k := range keys {
		onset := "never"
		if r.Onset[k] >= 0 {
			onset = fmt.Sprintf("%.0fs", r.Onset[k].Seconds())
			onsets = append(onsets, r.Onset[k])
		}
		t.AddRow(k, onset, r.ISPResolverAdopted[k])
	}
	var spread string
	if len(onsets) == len(keys) && len(onsets) > 0 {
		min, max := onsets[0], onsets[0]
		for _, o := range onsets {
			if o < min {
				min = o
			}
			if o > max {
				max = o
			}
		}
		spread = fmt.Sprintf("onset spread: %.0fs — the nationwide uniformity of §2; ISP blocklists lag by days (Fig. 6)\n", (max - min).Seconds())
	}
	return t.String() + spread
}
