package measure

import (
	"fmt"
	"time"

	"tspusim/internal/packet"
	"tspusim/internal/topo"
)

// ResidualResult validates the §3 methodology requirement: "each test used
// a fresh source port on Russian vantage points to prevent residual
// censorship affecting results of subsequent tests". The blocking state is
// keyed per flow, so a control connection reusing the previous test's port
// inherits its censorship — a classic measurement confound the experiment
// quantifies.
type ResidualResult struct {
	// ReusedPortBlocked: a benign connection on the same 4-tuple right
	// after a trigger still sees blocking.
	ReusedPortBlocked bool
	// FreshPortBlocked: a benign connection on a fresh port does not.
	FreshPortBlocked bool
	// ReusedAfterExpiry: the same reused port is clean once the 75 s SNI-I
	// hold lapses.
	ReusedAfterExpiry bool
}

// ResidualCensorship runs the three probes from a vantage.
func ResidualCensorship(lab *topo.Lab) ResidualResult {
	v := vantageOf(lab, topo.ERTelecom)
	var res ResidualResult

	benignProbe := func(port uint16) bool {
		f := NewFlow(lab, v.Stack, lab.US1, 443)
		// Pin the port by rebinding the flow's local port.
		f.Close()
		f = &Flow{sim: lab.Sim, Local: v.Stack, Remote: lab.US1, LPort: port, RPort: 443}
		f.lseq, f.rseq = 1000, 5000
		v.Stack.RawBind(port, func(p *packet.Packet) { f.LocalGot = append(f.LocalGot, p) })
		lab.US1.RawBind(443, func(p *packet.Packet) {
			if p.TCP.SrcPort == port {
				f.RemoteGot = append(f.RemoteGot, p)
			}
		})
		defer f.Close()
		f.L(packet.FlagSYN, nil)
		f.R(packet.FlagsSYNACK, nil)
		f.L(packet.FlagACK, nil)
		f.L(packet.FlagsPSHACK, CH(DomainControl)) // benign SNI
		f.R(packet.FlagsPSHACK, []byte("SERVERHELLO"))
		return f.LastLocalRST()
	}

	// Trigger on a specific port.
	port := v.Stack.EphemeralPort()
	fTrig := &Flow{sim: lab.Sim, Local: v.Stack, Remote: lab.US1, LPort: port, RPort: 443, lseq: 1000, rseq: 5000}
	v.Stack.RawBind(port, func(p *packet.Packet) { fTrig.LocalGot = append(fTrig.LocalGot, p) })
	lab.US1.RawBind(443, func(p *packet.Packet) {})
	fTrig.L(packet.FlagSYN, nil)
	fTrig.R(packet.FlagsSYNACK, nil)
	fTrig.L(packet.FlagACK, nil)
	fTrig.L(packet.FlagsPSHACK, CH(DomainSNI1))
	fTrig.Close()

	res.ReusedPortBlocked = benignProbe(port)
	res.FreshPortBlocked = benignProbe(v.Stack.EphemeralPort())
	// After the 75 s SNI-I hold, the reused port is clean again.
	lab.Sim.RunUntil(lab.Sim.Now() + 80*time.Second)
	res.ReusedAfterExpiry = benignProbe(port)
	return res
}

// Render prints the methodology check.
func (r ResidualResult) Render() string {
	return fmt.Sprintf("== Residual censorship (§3 methodology) ==\n"+
		"benign retry on the triggering port:      blocked=%v (residual state)\n"+
		"benign retry on a fresh port:             blocked=%v\n"+
		"triggering port after the 75s hold:       blocked=%v\n"+
		"paper: tests must use fresh source ports; blocking state is per-flow and expires\n",
		r.ReusedPortBlocked, r.FreshPortBlocked, r.ReusedAfterExpiry)
}
