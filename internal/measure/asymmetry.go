package measure

import (
	"fmt"
	"net/netip"
	"strings"

	"tspusim/internal/hostnet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
	"tspusim/internal/trace"
)

// AsymmetryResult is the §7.1.1 observation that motivated the
// partial-visibility experiments: "asymmetric routing is common in Russia:
// on all three vantage points, our upstream and downstream traffic would
// traverse different hops". The check runs TCP traceroutes in both
// directions and compares the hop sets — the method the paper used to
// support its upstream-only findings.
type AsymmetryResult struct {
	// Rows per vantage.
	Rows []AsymmetryRow
}

// AsymmetryRow is one vantage's bidirectional comparison.
type AsymmetryRow struct {
	Vantage string
	// ForwardHops / ReverseHops are the router addresses seen in each
	// direction (reverse list is destination→vantage).
	ForwardHops, ReverseHops []netip.Addr
	// Asymmetric reports whether the reverse path traverses routers the
	// forward path never touched.
	Asymmetric bool
}

// RoutingAsymmetry measures both directions between each vantage and the
// US measurement machine.
func RoutingAsymmetry(lab *topo.Lab) *AsymmetryResult {
	res := &AsymmetryResult{}
	lab.US1.Listen(80, hostnet.ListenOptions{})
	for _, name := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
		v := lab.Vantages[name]
		fwd := trace.Traceroute(lab, v.Stack, lab.US1.Addr(), 80, 24)
		// Reverse: the US machine traceroutes back to the vantage. The
		// vantage must answer TCP probes; any unused port gets an RST,
		// which marks arrival just as well.
		rev := trace.Traceroute(lab, lab.US1, v.Stack.Addr(), 19999, 24)

		row := AsymmetryRow{Vantage: name, ForwardHops: fwd.Hops, ReverseHops: rev.Hops}
		// Compare at the address level, exactly what traceroute shows: a
		// parallel link pair puts the same routers on both paths but the
		// ICMP sources come from different interfaces. Alias resolution
		// would merge them — the paper deliberately did not alias-resolve
		// (§7.3), and neither do we. The vantage-side access hop always
		// appears in both; everything beyond may differ.
		fwdAddrs := map[netip.Addr]bool{}
		for _, h := range fwd.Hops {
			fwdAddrs[h] = true
		}
		for _, h := range rev.Hops {
			if !h.IsValid() || fwdAddrs[h] {
				continue
			}
			// Directionality artifact 1: the far side of a wire the forward
			// path traversed (traceroute reports arriving interfaces, so
			// the same link shows different addresses per direction).
			if sharesLinkWithForward(lab, h, fwdAddrs) {
				continue
			}
			// Directionality artifact 2: the access link of either endpoint
			// host — the forward path terminates at it instead of
			// traversing it.
			if onHostAccessLink(lab, h) {
				continue
			}
			// A genuinely different wire: link-level or path-level
			// asymmetry, which is what lets upstream-only TSPU installs see
			// half a connection (§7.1.1).
			row.Asymmetric = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// sharesLinkWithForward reports whether addr sits on a link whose opposite
// interface the forward path reported — i.e. the same wire seen from the
// other end.
func sharesLinkWithForward(lab *topo.Lab, addr netip.Addr, fwd map[netip.Addr]bool) bool {
	for _, l := range lab.Net.Links() {
		if l.A().Addr() == addr && fwd[l.B().Addr()] {
			return true
		}
		if l.B().Addr() == addr && fwd[l.A().Addr()] {
			return true
		}
	}
	return false
}

// onHostAccessLink reports whether addr sits on a link that terminates at a
// non-router (an endpoint's access link).
func onHostAccessLink(lab *topo.Lab, addr netip.Addr) bool {
	for _, l := range lab.Net.Links() {
		if l.A().Addr() == addr && !l.B().Node().IsRouter() {
			return true
		}
		if l.B().Addr() == addr && !l.A().Node().IsRouter() {
			return true
		}
	}
	return false
}

// nodeOfAddr reverse-maps an interface address to its node name.
func nodeOfAddr(lab *topo.Lab, a netip.Addr) string {
	for _, l := range lab.Net.Links() {
		if l.A().Addr() == a {
			return l.A().Node().Name()
		}
		if l.B().Addr() == a {
			return l.B().Node().Name()
		}
	}
	return ""
}

// Render prints the comparison.
func (r *AsymmetryResult) Render() string {
	t := report.NewTable("Routing asymmetry (§7.1.1): bidirectional TCP traceroutes",
		"Vantage", "Fwd hops", "Rev hops", "Asymmetric")
	for _, row := range r.Rows {
		t.AddRow(row.Vantage, len(row.ForwardHops), len(row.ReverseHops), row.Asymmetric)
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, row := range r.Rows {
		if row.Asymmetric {
			fmt.Fprintf(&b, "%s: reverse path traverses routers the forward path never touched\n", row.Vantage)
		}
	}
	b.WriteString("paper: upstream and downstream traffic traverse different hops on all three vantages\n")
	return b.String()
}
