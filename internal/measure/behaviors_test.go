package measure

import (
	"strings"
	"testing"

	"tspusim/internal/topo"
)

func TestBehaviorTracesFig2(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 41, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	out := BehaviorTraces(lab)
	for _, want := range []string{
		"SNI-Based (I)", "SNI-Based (II)", "SNI-Based (IV)",
		"IP-Based", "QUIC",
		"RST/ACK",                 // the SNI-I rewrite visible in the client trace
		"[replies received: 0",    // IP-based silence
		"[server received 1 of 3", // QUIC trigger passes, rest drop
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 2 trace missing %q\n%s", want, out)
		}
	}
}

func TestFragBehaviorTraceFig3(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 42, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	out := FragBehaviorTrace(lab)
	if !strings.Contains(out, "TTLs rewritten") {
		t.Fatalf("Fig. 3 trace missing rewrite confirmation:\n%s", out)
	}
	// Send TTLs are distinct; receive TTLs must be uniform.
	if !strings.Contains(out, "ttl=33") || !strings.Contains(out, "ttl=21") {
		t.Fatalf("Fig. 3 trace missing distinct send TTLs:\n%s", out)
	}
}

func TestThrottleMeasureSNI3(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 43, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := ThrottleMeasure(lab)
	if res.GoodputBps < 300 || res.GoodputBps > 1100 {
		t.Fatalf("throttled goodput = %.0f B/s, want ~650", res.GoodputBps)
	}
	if res.ControlBps < 5000 {
		t.Fatalf("control goodput = %.0f B/s, suspiciously low", res.ControlBps)
	}
	if res.ControlBps/res.GoodputBps < 5 {
		t.Fatalf("slowdown only %.1fx", res.ControlBps/res.GoodputBps)
	}
	if !strings.Contains(res.Render(), "600-700") {
		t.Fatal("render missing paper reference")
	}
	// Throttling must be inactive again after the measurement.
	if lab.Controller.Policy().ThrottleActive {
		t.Fatal("throttle left active")
	}
}

func TestTracerouteStudyFig10(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 44, Endpoints: 160, ASes: 16, TrancoN: 100, RegistryN: 100})
	scan := FragScan(lab, false, true)
	study := RunTracerouteStudy(lab, scan)
	if len(study.Traces) == 0 {
		t.Fatal("no traceroutes")
	}
	if study.UniqueLinks == 0 {
		t.Fatal("no TSPU links")
	}
	if study.UniqueLinks > len(study.Traces) {
		t.Fatal("more links than traces")
	}
	if !strings.Contains(study.DOT, "color=red") {
		t.Fatal("DOT missing TSPU link marking")
	}
	if !strings.Contains(study.Render(lab.PaperScale()), "unique TSPU links") {
		t.Fatal("render incomplete")
	}
	// Clustering effect: shared devices mean strictly fewer links than
	// positive endpoints.
	positives := 0
	for _, v := range scan.Verdicts {
		if v.TSPULike {
			positives++
		}
	}
	if study.UniqueLinks >= positives {
		t.Fatalf("links %d not clustered below positives %d", study.UniqueLinks, positives)
	}
}
