package measure

import (
	"fmt"
	"strings"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/quicx"
	"tspusim/internal/report"
	"tspusim/internal/topo"
	"tspusim/internal/trace"
	"tspusim/internal/tspu"
)

// BehaviorTraces reproduces Fig. 2: a packet-level trace of each blocking
// behavior, captured at the client side (what a Russian user's tcpdump would
// show).
func BehaviorTraces(lab *topo.Lab) string {
	var b strings.Builder
	v := vantageOf(lab, topo.ERTelecom)

	run := func(title string, script func() []string) {
		fmt.Fprintf(&b, "--- %s ---\n", title)
		for _, line := range script() {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		b.WriteByte('\n')
	}

	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) {
			c.Send([]byte("SERVERHELLO....."))
			c.Send([]byte("CERTIFICATE....."))
		},
	})

	connTrace := func(domain string) []string {
		var lines []string
		conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
		lines = append(lines, "-> SYN")
		conn.OnPacket = func(p *packet.Packet) {
			lines = append(lines, "<- "+p.TCP.Flags.String()+payloadNote(p))
		}
		conn.OnEstablished = func() {
			lines = append(lines, "-> ACK")
			lines = append(lines, fmt.Sprintf("-> ClientHello (SNI=%s)", domain))
			conn.Send(CH(domain))
		}
		lab.Sim.Run()
		conn.Close()
		return lines
	}

	run("SNI-Based (I): RST/ACK rewriting ("+DomainSNI1+")", func() []string {
		return connTrace(DomainSNI1)
	})
	run("SNI-Based (II): allowance then symmetric drops ("+DomainSNI2+")", func() []string {
		lines := connTrace(DomainSNI2)
		f := NewFlow(lab, v.Stack, lab.US1, 443)
		defer f.Close()
		f.L(packet.FlagSYN, nil)
		f.R(packet.FlagsSYNACK, nil)
		f.L(packet.FlagACK, nil)
		f.L(packet.FlagsPSHACK, CH(DomainSNI2))
		before := len(f.RemoteGot)
		for i := 0; i < 12; i++ {
			f.L(packet.FlagsPSHACK, []byte("data"))
		}
		lines = append(lines, fmt.Sprintf("   [raw flow: %d of 12 post-trigger packets delivered, then symmetric drops]",
			len(f.RemoteGot)-before))
		return lines
	})
	run("SNI-Based (IV): split handshake backup drop ("+DomainSNI14+")", func() []string {
		var lines []string
		us2 := lab.US2.Listen(443, hostnet.ListenOptions{SplitHandshake: true})
		conn := v.Stack.Dial(lab.US2.Addr(), 443, hostnet.DialOptions{})
		lines = append(lines, "-> SYN")
		conn.OnPacket = func(p *packet.Packet) {
			lines = append(lines, "<- "+p.TCP.Flags.String())
		}
		conn.OnEstablished = func() {
			lines = append(lines, fmt.Sprintf("-> ClientHello (SNI=%s)", DomainSNI14))
			conn.Send(CH(DomainSNI14))
		}
		lab.Sim.Run()
		delivered := false
		for _, sc := range us2.Conns {
			if sc.RemotePort == conn.LocalPort && len(sc.Received) > 0 {
				delivered = true
			}
		}
		lines = append(lines, fmt.Sprintf("   [ClientHello delivered to server: %v — backup drops everything]", delivered))
		conn.Close()
		return lines
	})
	run("IP-Based: outgoing dropped, inbound responses rewritten", func() []string {
		var lines []string
		conn := v.Stack.Dial(lab.TorAddr, 9001, hostnet.DialOptions{})
		lab.Sim.Run()
		lines = append(lines, "-> SYN to blocked IP")
		lines = append(lines, fmt.Sprintf("   [replies received: %d — dropped at the TSPU]", len(conn.Packets)))
		conn.Close()
		return lines
	})
	run("QUIC: v1 initial triggers full drop", func() []string {
		var lines []string
		sport := v.Stack.EphemeralPort()
		got := 0
		lab.US1.BindUDP(443, func(p *packet.Packet) { got++ })
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, quicx.BuildInitial(quicx.Version1, 1200))
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, []byte("second"))
		v.Stack.SendUDP(lab.US1.Addr(), sport, 443, []byte("third"))
		lab.Sim.Run()
		lines = append(lines, "-> QUIC v1 Initial (1200 bytes)")
		lines = append(lines, "-> two follow-up datagrams")
		lines = append(lines, fmt.Sprintf("   [server received %d of 3 — everything after the trigger drops]", got))
		return lines
	})
	return b.String()
}

func payloadNote(p *packet.Packet) string {
	if len(p.TCP.Payload) > 0 {
		return fmt.Sprintf(" len=%d", len(p.TCP.Payload))
	}
	return ""
}

// FragBehaviorTrace reproduces Fig. 3: fragments buffered at the device,
// released together after the last arrives, TTLs rewritten.
func FragBehaviorTrace(lab *topo.Lab) string {
	var b strings.Builder
	b.WriteString("== Fig. 3: TSPU handling of IP fragmentation ==\n")
	v := vantageOf(lab, topo.ERTelecom)
	type arrival struct {
		at  time.Duration
		ttl uint8
		off uint16
	}
	var arrivals []arrival
	lab.US1.Tap(func(p *packet.Packet) {
		if p.IsFragment() || p.IP.FragOffset != 0 {
			arrivals = append(arrivals, arrival{lab.Sim.Now(), p.IP.TTL, p.IP.FragOffset})
		} else if p.TCP == nil {
			arrivals = append(arrivals, arrival{lab.Sim.Now(), p.IP.TTL, 0})
		}
	})
	defer lab.US1.ClearTaps()

	p := packet.NewTCP(v.Stack.Addr(), lab.US1.Addr(), v.Stack.EphemeralPort(), 7547, packet.FlagSYN, 1, 0, nil)
	p.IP.ID = v.Stack.NextIPID()
	frags, err := packet.FragmentCount(p, 3)
	if err != nil {
		return err.Error()
	}
	frags[1].IP.TTL = 33 // distinct TTLs show the rewrite
	frags[2].IP.TTL = 21
	base := lab.Sim.Now()
	for i, f := range frags {
		f := f
		sent := time.Duration(i) * 50 * time.Millisecond
		fmt.Fprintf(&b, "t=%3dms send fragment[%d] offset=%d ttl=%d\n", sent/time.Millisecond, i, f.IP.FragOffset, f.IP.TTL)
		lab.Sim.After(sent, func() { v.Stack.Send(f) })
	}
	lab.Sim.Run()
	for i, a := range arrivals {
		fmt.Fprintf(&b, "t=%3dms recv fragment[%d] offset=%d ttl=%d\n",
			(a.at-base)/time.Millisecond, i, a.off, a.ttl)
	}
	if len(arrivals) == 3 && arrivals[0].ttl == arrivals[1].ttl && arrivals[1].ttl == arrivals[2].ttl {
		b.WriteString("all fragments released together after the last arrived, TTLs rewritten to the first fragment's\n")
	}
	return b.String()
}

// ThrottleResult is the SNI-III measurement.
type ThrottleResult struct {
	// GoodputBps is the throttled goodput.
	GoodputBps float64
	// ControlBps is the un-throttled goodput of the same workload.
	ControlBps float64
}

// ThrottleMeasure activates the Feb 26 - Mar 4 throttling policy and
// measures upstream goodput for a throttled domain vs a control.
func ThrottleMeasure(lab *topo.Lab) ThrottleResult {
	lab.Controller.Update(func(p *tspu.Policy) { p.ThrottleActive = true })
	defer lab.Controller.Update(func(p *tspu.Policy) { p.ThrottleActive = false })
	v := vantageOf(lab, topo.ERTelecom)

	run := func(domain string) float64 {
		f := NewFlow(lab, v.Stack, lab.US1, 443)
		defer f.Close()
		f.L(packet.FlagSYN, nil)
		f.R(packet.FlagsSYNACK, nil)
		f.L(packet.FlagACK, nil)
		f.L(packet.FlagsPSHACK, CH(domain))
		start := lab.Sim.Now()
		received := 0
		base := len(f.RemoteGot)
		// 10 seconds of 1000-byte sends every 100ms.
		for i := 0; i < 100; i++ {
			f.Sleep(100 * time.Millisecond)
			f.L(packet.FlagsPSHACK, make([]byte, 1000))
		}
		for _, p := range f.RemoteGot[base:] {
			received += len(p.TCP.Payload)
		}
		elapsed := (lab.Sim.Now() - start).Seconds()
		return float64(received) / elapsed
	}
	return ThrottleResult{
		GoodputBps: run(DomainThrottle),
		ControlBps: run(DomainControl),
	}
}

// Render prints the throttling comparison.
func (r ThrottleResult) Render() string {
	return fmt.Sprintf("== SNI-III throttling (Feb 26 - Mar 4 2022 policy) ==\n"+
		"throttled goodput: %8.0f B/s (paper: 600-700 B/s)\n"+
		"control goodput:   %8.0f B/s\n"+
		"slowdown:          %8.1fx\n",
		r.GoodputBps, r.ControlBps, r.ControlBps/r.GoodputBps)
}

// TracerouteStudy reproduces Fig. 10-12: traceroutes to every TSPU-positive
// endpoint, TSPU-link extraction via the fragment localization, clustering,
// and DOT export.
type TracerouteStudy struct {
	Traces      []*trace.Result
	Cluster     *trace.Cluster
	UniqueLinks int
	DOT         string
}

// RunTracerouteStudy consumes a prior FragScan (with localization) and maps
// every positive endpoint's TSPU link.
func RunTracerouteStudy(lab *topo.Lab, scan *FragScanResult) *TracerouteStudy {
	study := &TracerouteStudy{Cluster: trace.NewCluster()}
	tspuEdges := map[string]bool{}
	for _, v := range scan.Verdicts {
		if !v.TSPULike || v.LocalizedHops == 0 {
			continue
		}
		tr := trace.Traceroute(lab, lab.Paris, v.Endpoint.Addr, v.Endpoint.Port, 32)
		study.Traces = append(study.Traces, tr)
		link, ok := trace.LinkFromTrace(tr, v.LocalizedHops)
		if !ok {
			continue
		}
		study.Cluster.Add(link, v.LocalizedHops == 1)
		tspuEdges[trace.EdgeKey(link)] = true
	}
	study.UniqueLinks = study.Cluster.Unique()
	study.DOT = trace.DOT(study.Traces, tspuEdges)
	return study
}

// Render summarizes the study (Fig. 10's caption numbers).
func (s *TracerouteStudy) Render(scale float64) string {
	t := report.NewTable("Fig. 10/11: traceroutes with TSPU links",
		"Metric", "Value", "Paper")
	t.AddRow("traceroutes with TSPU on path", len(s.Traces), "> 1M")
	t.AddRow("unique TSPU links", s.UniqueLinks, "6,871")
	t.AddRow("unique links (paper scale)", int(float64(s.UniqueLinks)*scale), "")
	sizes := s.Cluster.Members()
	if len(sizes) > 0 {
		t.AddRow("largest shared link serves", fmt.Sprintf("%d endpoints", sizes[0]), "censorship-as-a-service (Fig. 11)")
	}
	return t.String()
}
