package measure

import (
	"strings"
	"testing"
	"time"
)

// A shrunk run of the at-scale exhaustion experiment: same shape as the
// paper-scale config (Duration above the 60 s SYN timeout so the tail
// churns, below the 75 s hold), offered load small enough to finish in
// milliseconds.
func TestStateExhaustionAtScale(t *testing.T) {
	cfg := ExhaustScaleConfig{
		Seed:     1,
		Rate:     500,
		Duration: 70 * time.Second,
		Bounds:   []int{0, 1 << 16, 1 << 7},
	}
	res := StateExhaustionAtScale(cfg)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	offered := cfg.Rate * 70

	unlimited := res.Rows[0]
	if !unlimited.Survived {
		t.Fatal("unlimited table: hold did not survive the flood")
	}
	if unlimited.PressureEvictions != 0 {
		t.Fatalf("unlimited table recorded %d pressure evictions", unlimited.PressureEvictions)
	}
	if unlimited.Offered != offered {
		t.Fatalf("offered = %d, want %d", unlimited.Offered, offered)
	}
	// The plateau: concurrency peaks near Rate x 60s (the SYN timeout), not
	// at total offered load.
	plateau := cfg.Rate * 60
	if unlimited.PeakTable < plateau*8/10 || unlimited.PeakTable > offered {
		t.Fatalf("peak table %d outside (%d, %d]", unlimited.PeakTable, plateau*8/10, offered)
	}
	// Churn past the plateau is served by the entry pool, not fresh
	// allocation: allocations track peak concurrency (within a second of
	// load, since the peak is sampled once per batch and per-shard peaks
	// need not coincide with it), never total offered flows.
	if unlimited.PoolAllocs > unlimited.PeakTable+cfg.Rate {
		t.Fatalf("pool allocated %d entries for a %d peak — churn is not reusing", unlimited.PoolAllocs, unlimited.PeakTable)
	}
	if unlimited.PoolReuses == 0 {
		t.Fatal("no pool reuses despite churn past the SYN timeout")
	}
	if unlimited.Leaked != 0 {
		t.Fatalf("%d entries leaked after full age-out", unlimited.Leaked)
	}

	// A generously bounded table still shields the hold; a tiny one sheds it.
	if generous := res.Rows[1]; !generous.Survived {
		t.Fatalf("bound %d: hold should survive", generous.MaxFlows)
	}
	tiny := res.Rows[2]
	if tiny.Survived {
		t.Fatalf("bound %d: hold survived a flood %dx its table", tiny.MaxFlows, offered/tiny.MaxFlows)
	}
	if tiny.PressureEvictions == 0 {
		t.Fatal("tiny bound saw no pressure evictions")
	}
	if tiny.PeakTable > tiny.MaxFlows+8 { // per-shard rounding slack
		t.Fatalf("bound %d: peak table %d exceeded the bound", tiny.MaxFlows, tiny.PeakTable)
	}
	if tiny.Leaked != 0 {
		t.Fatalf("bounded run leaked %d entries", tiny.Leaked)
	}

	out := res.Render()
	for _, want := range []string{"State exhaustion at scale", "unlimited", "provisioning"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
