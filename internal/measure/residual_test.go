package measure

import (
	"strings"
	"testing"

	"tspusim/internal/topo"
)

// TestResidualCensorship pins the §3 methodology check: blocking state is
// per-flow, so a benign retry on the triggering 4-tuple inherits the
// censorship, a fresh source port does not, and the reused port is clean
// again once the 75 s SNI-I hold lapses.
func TestResidualCensorshipTable(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 41, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := ResidualCensorship(lab)
	checks := []struct {
		name string
		got  bool
		want bool
	}{
		{"benign retry on the triggering port", res.ReusedPortBlocked, true},
		{"benign retry on a fresh port", res.FreshPortBlocked, false},
		{"triggering port after the 75s hold", res.ReusedAfterExpiry, false},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: blocked=%v, want %v", c.name, c.got, c.want)
		}
	}
	if !strings.Contains(res.Render(), "fresh source ports") {
		t.Errorf("Render() missing methodology reference:\n%s", res.Render())
	}
}
