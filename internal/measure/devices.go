package measure

import (
	"sort"

	"tspusim/internal/hostnet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

// DeviceReport is an operator's-eye summary: run a standard mixed workload
// through the lab and dump every device's counters — which devices saw
// traffic, which triggered, which rewrote or dropped. It is the
// observability view a real TSPU fleet would export to its controller.
type DeviceReport struct {
	Rows []DeviceRow
}

// DeviceRow is one device's counters.
type DeviceRow struct {
	Name     string
	Stats    tspu.Stats
	Flows    int
	FragQs   int
	Triggers int
}

// Devices drives a representative workload (blocked and clean TLS, QUIC,
// blocked-IP dials, fragmented probes) from every vantage, then snapshots
// the fleet.
func Devices(lab *topo.Lab) *DeviceReport {
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	for _, v := range lab.Vantages {
		for _, domain := range []string{DomainSNI1, DomainSNI2, DomainSNI14, DomainControl} {
			conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
			ch := CH(domain)
			conn.OnEstablished = func() { conn.Send(ch) }
			lab.Sim.Run()
			conn.Close()
		}
		v.Stack.SendUDP(lab.US1.Addr(), v.Stack.EphemeralPort(), 443, quicTriggerPayload())
		conn := v.Stack.Dial(lab.TorAddr, 9001, hostnet.DialOptions{})
		lab.Sim.Run()
		conn.Close()
	}

	rep := &DeviceReport{}
	for _, d := range lab.Devices {
		st := d.Stats()
		if st.Handled == 0 {
			continue // idle endpoint-AS devices are noise at report scale
		}
		total := 0
		for _, n := range st.Triggers {
			total += n
		}
		rep.Rows = append(rep.Rows, DeviceRow{
			Name: d.Name(), Stats: st,
			Flows: d.ConntrackSize(), FragQs: d.PendingFragQueues(),
			Triggers: total,
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Name < rep.Rows[j].Name })
	return rep
}

// Render prints the fleet table.
func (r *DeviceReport) Render() string {
	t := report.NewTable("TSPU fleet counters after a mixed workload",
		"Device", "Handled", "Triggers", "Rewritten", "Dropped", "Flows")
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Stats.Handled, row.Triggers, row.Stats.Rewritten, row.Stats.Dropped, row.Flows)
	}
	return t.String()
}
