package measure

import (
	"fmt"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
)

// ObservatoryResult reproduces the §5.3.2 finding that motivated the
// paper's new techniques: because TSPU blocking only triggers on
// locally-originated connections, remote platforms in the Censored Planet
// style (probes originated outside Russia) cannot see out-registry blocking
// at all, while in-country OONI-style web-connectivity tests report it as
// anomalies ("over 70% of web connectivity tests" for play.google.com).
type ObservatoryResult struct {
	// Rates[class][platform] is the anomaly rate.
	Rates map[string]map[string]float64
	// Trials per cell.
	Trials int
}

// Platform labels.
const (
	PlatformOONI = "ooni (in-country)"
	PlatformCP   = "censoredplanet (remote echo)"
)

// ObservatoryComparison tests three domain classes from both perspectives.
func ObservatoryComparison(lab *topo.Lab, trials int) *ObservatoryResult {
	if trials <= 0 {
		trials = 20
	}
	res := &ObservatoryResult{Trials: trials, Rates: make(map[string]map[string]float64)}
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	v := vantageOf(lab, topo.ERTelecom)

	// An in-country echo host for the Censored Planet style probe: remote
	// machine connects in and bounces the CH back out.
	var echoEp *topo.Endpoint
	for _, ep := range lab.Endpoints {
		// A clean echo server: CP's baseline methodology doesn't rely on
		// upstream-only devices (that was this paper's novel trick).
		if ep.Echo && !ep.BehindTSPU && !ep.BehindUpstreamOnly {
			echoEp = ep
			break
		}
	}

	classes := map[string]string{
		"out-registry (SNI-II)": DomainSNI2,
		"registry (SNI-I)":      DomainSNI1,
		"control":               DomainControl,
	}
	for class, domain := range classes {
		res.Rates[class] = make(map[string]float64)

		// OONI style: fetch from the vantage, anomaly = reset or no body.
		anomalies := 0
		for i := 0; i < trials; i++ {
			conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
			ch := CH(domain)
			conn.OnEstablished = func() { conn.Send(ch) }
			lab.Sim.Run()
			blocked := conn.ResetSeen || len(conn.Received) == 0
			if domain == DomainSNI2 {
				// SNI-II lets the first response through; an OONI web test
				// fails on the truncated page body that follows. Emulate by
				// probing continued transfer.
				before := conn.Segments
				for j := 0; j < 10; j++ {
					conn.SendRaw(packet.FlagsPSHACK, []byte("GET /next"))
					lab.Sim.Run()
				}
				blocked = conn.Segments-before < 10
			}
			if blocked {
				anomalies++
			}
			conn.Close()
		}
		res.Rates[class][PlatformOONI] = float64(anomalies) / float64(trials)

		// Censored Planet style: Quack echo from the Paris machine using an
		// ordinary ephemeral source port. The echoed CH leaves Russia toward
		// a non-443 port on a remotely-originated flow, so nothing triggers.
		anomalies = 0
		if echoEp != nil {
			for i := 0; i < trials; i++ {
				got := echoTrialEphemeral(lab, echoEp, domain, 10)
				if got < 10 {
					anomalies++
				}
			}
			res.Rates[class][PlatformCP] = float64(anomalies) / float64(trials)
		}
	}
	return res
}

// echoTrialEphemeral is the standard Quack probe (ephemeral client port, as
// Censored Planet runs it) — contrast with echoTrial's port-443 trick.
func echoTrialEphemeral(lab *topo.Lab, ep *topo.Endpoint, domain string, n int) int {
	conn := lab.Paris.Dial(ep.Addr, 7, hostnet.DialOptions{})
	defer conn.Close()
	ch := CH(domain)
	conn.OnEstablished = func() { conn.Send(ch) }
	lab.Sim.Run()
	before := conn.Segments
	for i := 0; i < n; i++ {
		conn.SendRaw(packet.FlagsPSHACK, []byte(fmt.Sprintf("p%02d", i)))
		lab.Sim.Run()
	}
	return conn.Segments - before
}

// Render prints the platform comparison.
func (r *ObservatoryResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Observatory comparison (§5.3.2): anomaly rates, %d trials/cell", r.Trials),
		"Domain class", PlatformOONI, PlatformCP)
	for _, class := range []string{"out-registry (SNI-II)", "registry (SNI-I)", "control"} {
		t.AddRow(class,
			fmt.Sprintf("%.0f%%", 100*r.Rates[class][PlatformOONI]),
			fmt.Sprintf("%.0f%%", 100*r.Rates[class][PlatformCP]))
	}
	return t.String() +
		"paper: OONI reports >70% anomalies for play.google.com; Censored Planet cannot detect it\n"
}
