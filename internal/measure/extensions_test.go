package measure

import (
	"strings"
	"testing"
	"time"

	"tspusim/internal/ispdpi"
	"tspusim/internal/topo"
	"tspusim/internal/workload"
)

// thin aliases keep the fingerprint test readable.
var (
	ispdpiKnownISPs   = ispdpi.KnownBlockpageISPs
	ispdpiBlockpage   = ispdpi.BlockpageHTML
	ispdpiFingerprint = ispdpi.FingerprintBlockpage
)

func TestObservatoryComparison(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 51, Endpoints: 200, ASes: 16, EchoServers: 60, TrancoN: 100, RegistryN: 100})
	res := ObservatoryComparison(lab, 10)

	ooni := res.Rates["out-registry (SNI-II)"][PlatformOONI]
	cp := res.Rates["out-registry (SNI-II)"][PlatformCP]
	// The paper's asymmetry: in-country tests see the out-registry blocking
	// (>70% anomalies), remote platforms see none.
	if ooni < 0.7 {
		t.Fatalf("OONI anomaly rate for out-registry = %.2f, want >= 0.7", ooni)
	}
	if cp != 0 {
		t.Fatalf("Censored Planet anomaly rate for out-registry = %.2f, want 0", cp)
	}
	// Registry SNI-I domains: visible in-country too.
	if res.Rates["registry (SNI-I)"][PlatformOONI] < 0.7 {
		t.Fatal("SNI-I domains not anomalous in-country")
	}
	// Controls clean everywhere.
	if res.Rates["control"][PlatformOONI] != 0 || res.Rates["control"][PlatformCP] != 0 {
		t.Fatalf("control anomalies: %+v", res.Rates["control"])
	}
	if !strings.Contains(res.Render(), "censoredplanet") {
		t.Fatal("render incomplete")
	}
}

func TestTimelineReplay(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 52, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	samples := TimelineReplay(lab)
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	p2021, pFeb, pMar := samples[0], samples[1], samples[2]

	// 2021: policed around 16 kB/s — well below the ~30 kB/s offered, well
	// above the 2022 rate.
	if p2021.TwitterGoodputBps < 8000 || p2021.TwitterGoodputBps > 20000 {
		t.Fatalf("2021 goodput = %.0f B/s, want ~16250", p2021.TwitterGoodputBps)
	}
	if p2021.TwitterReset || !p2021.QUICWorks {
		t.Fatalf("2021 phase: reset=%v quic=%v", p2021.TwitterReset, p2021.QUICWorks)
	}
	// Feb 2022: hard throttle.
	if pFeb.TwitterGoodputBps > 1100 {
		t.Fatalf("Feb 2022 goodput = %.0f B/s, want ~650", pFeb.TwitterGoodputBps)
	}
	if pFeb.TwitterReset || !pFeb.QUICWorks {
		t.Fatalf("Feb 2022 phase: reset=%v quic=%v", pFeb.TwitterReset, pFeb.QUICWorks)
	}
	// Mar 4: RST blocking, QUIC filtered.
	if !pMar.TwitterReset {
		t.Fatal("Mar 2022: no RST blocking")
	}
	if pMar.QUICWorks {
		t.Fatal("Mar 2022: QUIC still works")
	}
	if !strings.Contains(RenderTimeline(samples), "2022-03-04") {
		t.Fatal("render incomplete")
	}
	// Monotonic virtual clock across phases.
	if !(p2021.MeasuredAt < pFeb.MeasuredAt && pFeb.MeasuredAt < pMar.MeasuredAt) {
		t.Fatal("phases not on one continuous clock")
	}
}

func TestResidualCensorship(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 53, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := ResidualCensorship(lab)
	if !res.ReusedPortBlocked {
		t.Fatal("reused port saw no residual censorship")
	}
	if res.FreshPortBlocked {
		t.Fatal("fresh port was blocked")
	}
	if res.ReusedAfterExpiry {
		t.Fatal("residual state outlived the SNI-I hold")
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestWebConnectivityLayers(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 54, Endpoints: 40, ASes: 4, TrancoN: 200, RegistryN: 200})
	// Sample registry domains plus controls.
	domains := append([]workload.Domain{}, lab.Registry[:60]...)
	domains = append(domains,
		workload.Domain{Name: "clean-control-a.example"},
		workload.Domain{Name: "clean-control-b.example"},
	)
	res := WebConnectivity(lab, topo.ERTelecom, domains)
	counts := res.Counts()

	// Controls come back OK end to end (DNS, HTTP via the web farm, TLS).
	if counts[WebOK] < 2 {
		t.Fatalf("controls not OK: %v", counts)
	}
	// ER-Telecom's resolver blocklist is large: most registry domains hit
	// the blockpage, fingerprinted to the right ISP.
	if counts[WebDNSBlockpage] == 0 {
		t.Fatalf("no blockpage verdicts: %v", counts)
	}
	for _, wt := range res.Tests {
		if wt.Verdict == WebDNSBlockpage && wt.BlockpageISP != topo.ERTelecom {
			t.Fatalf("blockpage fingerprinted as %q", wt.BlockpageISP)
		}
	}
	// TSPU-only domains (in registry, missing from the ISP blocklist) show
	// the tls-reset signature: DNS clean, TLS dead.
	if counts[WebTLSReset] == 0 {
		t.Fatalf("no tls-reset verdicts: %v", counts)
	}
	if counts[WebDNSFailure] != 0 {
		t.Fatalf("unexpected dns failures: %v", counts)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestBlockpageFingerprinting(t *testing.T) {
	for _, isp := range ispdpiKnownISPs() {
		body := ispdpiBlockpage(isp, "blocked.ru")
		got, ok := ispdpiFingerprint(body)
		if !ok || got != isp {
			t.Fatalf("fingerprint(%s) = %q ok=%v", isp, got, ok)
		}
	}
	if _, ok := ispdpiFingerprint("<html><body>ordinary content</body></html>"); ok {
		t.Fatal("false positive on ordinary content")
	}
}

func TestPolicyPropagation(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 55, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := PolicyPropagation(lab, 8*time.Second)
	for v, onset := range res.Onset {
		if onset < 0 {
			t.Fatalf("%s never blocked", v)
		}
		if onset > 10*time.Second {
			t.Fatalf("%s onset %v exceeds jitter window", v, onset)
		}
		if res.ISPResolverAdopted[v] {
			t.Fatalf("%s resolver magically adopted the fresh domain", v)
		}
	}
	if !strings.Contains(res.Render(), "onset spread") {
		t.Fatalf("render incomplete:\n%s", res.Render())
	}
}

func TestRoutingAsymmetry(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 57, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := RoutingAsymmetry(lab)
	got := map[string]bool{}
	for _, row := range res.Rows {
		if len(row.ForwardHops) == 0 || len(row.ReverseHops) == 0 {
			t.Fatalf("%s: empty traceroute", row.Vantage)
		}
		got[row.Vantage] = row.Asymmetric
	}
	// Rostelecom's return path crosses the clean parallel link (its edge
	// router pair); OBIT returns via the rt-transit parallel. ER-Telecom is
	// fully symmetric.
	if !got[topo.Rostelecom] {
		t.Fatal("rostelecom should be asymmetric")
	}
	if got[topo.ERTelecom] {
		t.Fatal("ertelecom should be symmetric")
	}
	if !strings.Contains(res.Render(), "asymmetry") {
		t.Fatal("render incomplete")
	}
}

func TestDeviceReport(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 58, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	rep := Devices(lab)
	if len(rep.Rows) < 4 {
		t.Fatalf("only %d active devices", len(rep.Rows))
	}
	names := map[string]bool{}
	totalTriggers := 0
	for _, row := range rep.Rows {
		names[row.Name] = true
		totalTriggers += row.Triggers
		if row.Stats.Handled <= 0 {
			t.Fatalf("%s reported idle", row.Name)
		}
	}
	for _, want := range []string{"ertelecom-tspu-sym", "rostelecom-tspu-sym", "obit-tspu-sym"} {
		if !names[want] {
			t.Fatalf("missing device %s", want)
		}
	}
	if totalTriggers == 0 {
		t.Fatal("workload produced no triggers")
	}
	if !strings.Contains(rep.Render(), "fleet") {
		t.Fatal("render incomplete")
	}
}
