package measure

import (
	"strings"
	"testing"

	"tspusim/internal/topo"
)

func TestDomainSurveyFig6(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 6, Endpoints: 40, ASes: 4, TrancoN: 300, RegistryN: 300})
	res := DomainSurvey(lab, "registry-sample", lab.Registry)
	tspu, perISP, tspuOnly := res.Counts()

	// The TSPU must block ~96.55% of the registry sample.
	frac := float64(tspu) / float64(len(lab.Registry))
	if frac < 0.90 || frac > 1.0 {
		t.Fatalf("TSPU blocked %.2f of registry, want ~0.9655", frac)
	}
	// ISP resolvers lag: rostelecom < obit < ertelecom < TSPU (Fig. 6).
	if !(perISP[topo.Rostelecom] < perISP[topo.OBIT] &&
		perISP[topo.OBIT] < perISP[topo.ERTelecom] &&
		perISP[topo.ERTelecom] < tspu) {
		t.Fatalf("ordering broken: %v tspu=%d", perISP, tspu)
	}
	if tspuOnly == 0 {
		t.Fatal("no TSPU-only blocking despite ISP lag")
	}
	if !strings.Contains(res.Render(), "Fig. 6") {
		t.Fatal("render missing title")
	}
}

func TestDomainSurveyTranco(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 7, Endpoints: 40, ASes: 4, TrancoN: 400, RegistryN: 100})
	res := DomainSurvey(lab, "tranco", lab.Tranco)
	tspu, _, tspuOnly := res.Counts()
	if tspu == 0 {
		t.Fatal("no Tranco domains blocked")
	}
	// Most Tranco blocking is out-registry (Google services, circumvention,
	// news, porn) and so invisible to ISP resolvers.
	if float64(tspuOnly)/float64(tspu) < 0.5 {
		t.Fatalf("tspu-only fraction = %d/%d, expected mostly out-registry", tspuOnly, tspu)
	}
}

func TestCategoriesFig7(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 8, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 240})
	res := DomainSurvey(lab, "registry-sample", lab.Registry)
	cb := Categories(lab, res, 12, 40)
	allTotal, blockedTotal := 0, 0
	for _, n := range cb.All {
		allTotal += n
	}
	for _, n := range cb.Blocked {
		blockedTotal += n
	}
	if allTotal != len(lab.Registry) {
		t.Fatalf("all = %d, want %d", allTotal, len(lab.Registry))
	}
	if blockedTotal == 0 {
		t.Fatal("no blocked categories")
	}
	if !strings.Contains(cb.Render(), "Fig. 7") {
		t.Fatal("render missing title")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 9, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := Table3(lab)
	if len(res.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range res.Rows {
		if !row.MatchesPaperBehaviors {
			t.Errorf("%s: measured SNI-I=%v SNI-II=%v SNI-IV=%v, paper %v/%v/%v",
				row.Domain, row.SNI1, row.SNI2, row.SNI4,
				row.ExpectedSNI1, row.ExpectedSNI2, row.ExpectedSNI4)
		}
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Fatal("render missing title")
	}
}

func TestCHFuzzFig13(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 10, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	rows := CHFuzz(lab)
	if rows[0].Name != "unmodified" || !rows[0].Blocked {
		t.Fatal("baseline CH not blocked")
	}
	for _, r := range rows[1:] {
		if r.Structural && r.Blocked {
			t.Errorf("%s: structural corruption still blocked", r.Name)
		}
		if !r.Structural && !r.Blocked {
			t.Errorf("%s: cosmetic change evaded blocking", r.Name)
		}
	}
	if !strings.Contains(RenderCHFuzz(rows), "Fig. 13") {
		t.Fatal("render missing title")
	}
}

func TestQUICFuzzFig14(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 12, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	res := QUICFuzz(lab)
	if !res.V1Blocked {
		t.Fatal("v1 not blocked")
	}
	if res.Draft29Blocked || res.QuicpingBlocked || res.Port80Blocked {
		t.Fatalf("overbroad fingerprint: %+v", res)
	}
	if res.MinLen != 1001 {
		t.Fatalf("MinLen = %d, want 1001", res.MinLen)
	}
	if !strings.Contains(res.Render(), "1001") {
		t.Fatal("render missing threshold")
	}
}

func TestVennRegions(t *testing.T) {
	lab := topo.Build(topo.Options{Seed: 13, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 200})
	res := DomainSurvey(lab, "registry-sample", lab.Registry)
	venn := res.Venn()
	total := 0
	for _, n := range venn {
		total += n
	}
	if total != len(lab.Registry) {
		t.Fatalf("venn total %d != %d domains", total, len(lab.Registry))
	}
	// The dominant region must include the TSPU (it blocks ~96.5%).
	best, bestN := "", 0
	for k, n := range venn {
		if n > bestN {
			best, bestN = k, n
		}
	}
	if !strings.Contains(best, "tspu") {
		t.Fatalf("dominant region %q lacks tspu", best)
	}
	if !strings.Contains(res.RenderVenn(), "Venn") {
		t.Fatal("render incomplete")
	}
}
