package measure

import (
	"fmt"
	"net/netip"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/report"
	"tspusim/internal/topo"
)

// EchoResult is the Table 4 funnel plus per-endpoint verdicts used by the
// Table 5 correlations.
type EchoResult struct {
	// Funnel counts.
	Discovered, NmapFiltered, TSPUPositive int
	// AS counts at each stage.
	DiscoveredASes, FilteredASes, PositiveASes int
	// Verdicts per tested endpoint.
	Verdicts []EchoVerdict
}

// EchoVerdict is one echo server's outcome.
type EchoVerdict struct {
	Endpoint *topo.Endpoint
	// ControlOK: all control packets (benign SNI) echoed.
	ControlOK bool
	// EchoBlocked: the SNI-II trigger cut the echo stream short.
	EchoBlocked bool
	// IPBlocked: the Tor-node SYN probe came back RST/ACK (IP-based block
	// on path).
	IPBlocked bool
}

// EchoMeasure runs the full §7.2 echo pipeline: ZMap-style discovery of
// port-7 echo servers, the §4 Nmap router/switch filter, and the Quack-style
// trigger test from the Paris machine — whose client port must be 443 for
// the role-reversed trigger to match (the paper's own confirmation of the
// visibility hypothesis). It then correlates with Tor-node IP probes.
func EchoMeasure(lab *topo.Lab, echoPackets int) *EchoResult {
	if echoPackets <= 0 {
		echoPackets = 20
	}
	res := &EchoResult{}

	// Discovery: probe port 7 everywhere (ZMap pass).
	var discovered []*topo.Endpoint
	asSeen := map[int]bool{}
	for _, ep := range lab.Endpoints {
		conn := lab.Paris.Dial(ep.Addr, 7, hostnet.DialOptions{})
		lab.Sim.Run()
		open := conn.State == hostnet.StateEstablished
		conn.Close()
		if open {
			discovered = append(discovered, ep)
			asSeen[ep.AS.Index] = true
		}
	}
	res.Discovered = len(discovered)
	res.DiscoveredASes = len(asSeen)

	// Ethics filter: router/switch labels only (§4).
	var filtered []*topo.Endpoint
	asSeen = map[int]bool{}
	for _, ep := range discovered {
		if ep.NmapLabel == "router" || ep.NmapLabel == "switch" {
			filtered = append(filtered, ep)
			asSeen[ep.AS.Index] = true
		}
	}
	res.NmapFiltered = len(filtered)
	res.FilteredASes = len(asSeen)

	asSeen = map[int]bool{}
	for _, ep := range filtered {
		v := EchoVerdict{Endpoint: ep}
		v.ControlOK = echoTrial(lab, ep, DomainControl, echoPackets) >= echoPackets
		if v.ControlOK {
			got := echoTrial(lab, ep, DomainSNI2, echoPackets)
			v.EchoBlocked = got < echoPackets/2
		}
		v.IPBlocked = torProbe(lab, ep.Addr, 7)
		res.Verdicts = append(res.Verdicts, v)
		if v.EchoBlocked {
			res.TSPUPositive++
			asSeen[ep.AS.Index] = true
		}
	}
	res.PositiveASes = len(asSeen)
	return res
}

// echoTrial opens an echo connection from Paris with client port 443, sends
// the ClientHello, waits for its echo, then streams n packets and counts the
// echoes received.
func echoTrial(lab *topo.Lab, ep *topo.Endpoint, domain string, n int) int {
	conn := lab.Paris.Dial(ep.Addr, 7, hostnet.DialOptions{SrcPort: 443})
	defer conn.Close()
	ch := CH(domain)
	conn.OnEstablished = func() { conn.Send(ch) }
	lab.Sim.Run()
	echoesBefore := conn.Segments
	for i := 0; i < n; i++ {
		conn.SendRaw(packet.FlagsPSHACK, []byte(fmt.Sprintf("payload-%02d", i)))
		lab.Sim.Run()
	}
	return conn.Segments - echoesBefore
}

// torProbe sends a SYN from the blocked Tor node and reports whether the
// response came back as RST/ACK (the IP-based blocking signature, §7.2).
func torProbe(lab *topo.Lab, addr netip.Addr, port uint16) bool {
	conn := lab.Tor.Dial(addr, port, hostnet.DialOptions{})
	lab.Sim.Run()
	blocked := conn.ResetSeen
	conn.Close()
	return blocked
}

// Table5Echo builds the IP-block vs echo-block contingency matrix.
func (r *EchoResult) Table5Echo() *report.Contingency {
	c := &report.Contingency{Title: "Table 5 (upper): IP blocking vs echo blocking", RowName: "IP", ColName: "Echo"}
	for _, v := range r.Verdicts {
		if !v.ControlOK {
			continue
		}
		c.Add(v.IPBlocked, v.EchoBlocked)
	}
	return c
}

// Render prints the Table 4 funnel.
func (r *EchoResult) Render() string {
	t := report.NewTable("Table 4: echo server measurements",
		"", "Echo Servers", "Nmap-filtered", "TSPU-positive")
	t.AddRow("IPs", r.Discovered, r.NmapFiltered, r.TSPUPositive)
	t.AddRow("ASes", r.DiscoveredASes, r.FilteredASes, r.PositiveASes)
	return t.String()
}
