// Package workload generates the testing inputs of §6: a Tranco-like top
// list augmented with Citizen-Lab-style test domains, a registry sample of
// domains added to Roskomnadzor's blocking registry since 2022-01-01,
// synthetic HTML pages for each domain, and an LDA topic model (collapsed
// Gibbs sampling, after Blei et al. [35] as used by Ramesh et al. [81]) that
// clusters the pages into the categories of Fig. 7.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"tspusim/internal/sim"
)

// Category labels follow Fig. 7.
type Category int

// Domain categories (Fig. 7).
const (
	CatCircumvention Category = iota
	CatProvocative
	CatTechnology
	CatPornography
	CatService
	CatStreaming
	CatPirating
	CatFinance
	CatGambling
	CatDrugs
	CatInformativeMedia
	CatErrorPage
	numCategories
)

var categoryNames = [...]string{
	"Circumvention", "Provocative", "Technology", "Pornography",
	"Service", "Streaming", "Pirating", "Finance", "Gambling",
	"Drugs", "Informative Media", "Error Page",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Categories returns all real categories (excluding Error Page).
func Categories() []Category {
	out := make([]Category, 0, numCategories-1)
	for c := Category(0); c < CatErrorPage; c++ {
		out = append(out, c)
	}
	return out
}

// keywords per category: both the generator vocabulary and the ground truth
// the topic model must recover.
var categoryKeywords = map[Category][]string{
	CatCircumvention:    {"vpn", "proxy", "tor", "bypass", "tunnel", "obfuscation", "bridge", "relay", "anonymity", "unblock"},
	CatProvocative:      {"opinion", "protest", "rights", "activism", "dissent", "controversy", "politics", "freedom", "petition", "corruption"},
	CatTechnology:       {"software", "developer", "cloud", "hardware", "startup", "opensource", "api", "mobile", "database", "encryption"},
	CatPornography:      {"adult", "explicit", "camgirl", "nsfw", "erotic", "mature", "xxx", "webcam", "fetish", "lust"},
	CatService:          {"delivery", "booking", "marketplace", "classifieds", "rental", "courier", "logistics", "subscription", "support", "account"},
	CatStreaming:        {"video", "stream", "episode", "movie", "series", "live", "broadcast", "playlist", "trailer", "subtitles"},
	CatPirating:         {"torrent", "magnet", "warez", "crack", "keygen", "rip", "seeders", "leech", "tracker", "repack"},
	CatFinance:          {"bank", "crypto", "exchange", "trading", "loan", "invest", "wallet", "forex", "broker", "payments"},
	CatGambling:         {"casino", "bets", "poker", "jackpot", "slots", "roulette", "odds", "bookmaker", "wager", "lottery"},
	CatDrugs:            {"pharmacy", "pills", "dosage", "stimulant", "prescription", "narcotic", "psychoactive", "dispensary", "synthesis", "supplement"},
	CatInformativeMedia: {"news", "journalist", "report", "editorial", "blog", "media", "headline", "coverage", "correspondent", "press"},
}

// Keywords returns the generator vocabulary of a category.
func Keywords(c Category) []string { return categoryKeywords[c] }

// Domain is one testing-input entry.
type Domain struct {
	Name     string
	Category Category
	// Rank is the Tranco-style popularity rank (0 = not ranked).
	Rank int
	// InRegistry marks registry membership; AddedAfterFeb24 marks the
	// out-registry-turned-registry wartime additions (Table 3's footnote).
	InRegistry      bool
	AddedAfterFeb24 bool
	// FromCLBL marks Citizen Lab Global Block List entries.
	FromCLBL bool
}

// WellKnown lists the concrete domains the paper names, with their blocking
// behaviors, so examples and tests exercise recognizable names. These are
// seeded into every generated Tranco list.
type WellKnown struct {
	Name     string
	Category Category
	SNI1     bool
	SNI2     bool
	SNI4     bool
	Throttle bool
}

// WellKnownDomains returns Table 3's named domains.
func WellKnownDomains() []WellKnown {
	return []WellKnown{
		{"facebook.com", CatInformativeMedia, true, false, false, false},
		{"web.facebook.com", CatInformativeMedia, true, false, true, false},
		{"twitter.com", CatInformativeMedia, true, false, true, true},
		{"t.co", CatInformativeMedia, true, false, true, false},
		{"twimg.com", CatInformativeMedia, true, false, true, false},
		{"instagram.com", CatInformativeMedia, true, false, false, false},
		{"cdninstagram.com", CatInformativeMedia, true, false, true, false},
		{"messenger.com", CatService, true, false, true, false},
		{"fbcdn.net", CatInformativeMedia, true, false, false, true},
		{"dw.com", CatInformativeMedia, true, false, false, false},
		{"meduza.io", CatInformativeMedia, true, false, false, false},
		{"bbc.com", CatInformativeMedia, true, false, false, false},
		{"theins.ru", CatInformativeMedia, true, false, false, false},
		{"infox.sg", CatInformativeMedia, true, false, false, false},
		{"tor.eff.org", CatCircumvention, true, false, false, false},
		{"googlesyndication.com", CatService, true, false, false, false},
		{"play.google.com", CatService, false, true, false, false},
		{"news.google.com", CatInformativeMedia, false, true, false, false},
		{"nordvpn.com", CatCircumvention, false, true, false, false},
		{"nordaccount.com", CatCircumvention, false, true, false, false},
		{"numbuster.ru", CatService, true, false, true, false},
	}
}

var tlds = []string{".com", ".ru", ".org", ".net", ".io", ".tv", ".me", ".su", ".info", ".biz"}

// nameFor synthesizes a plausible domain name from a category keyword and a
// serial number.
func nameFor(rng *sim.Rand, c Category, i int) string {
	kw := sim.Pick(rng, categoryKeywords[c])
	tld := sim.Pick(rng, tlds)
	return fmt.Sprintf("%s-%s%d%s", kw, suffixes[rng.Intn(len(suffixes))], i, tld)
}

var suffixes = []string{"hub", "zone", "portal", "club", "base", "center", "point", "world", "city", "lab"}

// TrancoOptions configures GenTranco.
type TrancoOptions struct {
	// N is the number of ranked domains (paper: 10,000 from Tranco plus
	// 1,325 CLBL extras for 11,325 total).
	N int
	// CLBL adds this many Citizen-Lab-style sensitive test domains.
	CLBL int
}

// GenTranco generates the Tranco-like ranked list, seeded with the paper's
// named domains at top ranks. Category mix for a general top list skews
// toward technology/service/streaming/media.
func GenTranco(rng *sim.Rand, opts TrancoOptions) []Domain {
	if opts.N == 0 {
		opts.N = 10000
	}
	if opts.CLBL == 0 {
		opts.CLBL = 1325
	}
	r := rng.Fork("tranco")
	var out []Domain
	for i, wk := range WellKnownDomains() {
		out = append(out, Domain{Name: wk.Name, Category: wk.Category, Rank: i + 1})
	}
	// General top-list category mix.
	mix := []Category{
		CatTechnology, CatTechnology, CatService, CatService, CatStreaming,
		CatInformativeMedia, CatInformativeMedia, CatFinance, CatPornography,
		CatProvocative,
	}
	for i := len(out); i < opts.N; i++ {
		c := sim.Pick(r, mix)
		out = append(out, Domain{Name: nameFor(r, c, i), Category: c, Rank: i + 1})
	}
	// CLBL: deliberately sensitive categories.
	clblMix := []Category{
		CatCircumvention, CatProvocative, CatPornography, CatInformativeMedia,
		CatGambling, CatDrugs, CatPirating,
	}
	for i := 0; i < opts.CLBL; i++ {
		c := sim.Pick(r, clblMix)
		out = append(out, Domain{Name: nameFor(r, c, opts.N+i), Category: c, FromCLBL: true})
	}
	return out
}

// RegistryOptions configures GenRegistry.
type RegistryOptions struct {
	// N is the sample size (paper: 10,000 domains added since 2022-01-01).
	N int
	// AfterFeb24Fraction is the share added after the invasion (wartime
	// media blocks).
	AfterFeb24Fraction float64
}

// GenRegistry generates the registry sample. The category mix follows the
// paper's Fig. 7 finding: gambling, news/media, and streaming dominate.
func GenRegistry(rng *sim.Rand, opts RegistryOptions) []Domain {
	if opts.N == 0 {
		opts.N = 10000
	}
	if opts.AfterFeb24Fraction == 0 {
		opts.AfterFeb24Fraction = 0.12
	}
	r := rng.Fork("registry")
	// Weighted mix approximating Fig. 7's "All Sites" bars.
	mix := []Category{
		CatGambling, CatGambling, CatGambling, CatGambling,
		CatInformativeMedia, CatInformativeMedia, CatInformativeMedia,
		CatStreaming, CatStreaming,
		CatDrugs, CatDrugs,
		CatFinance, CatPirating, CatPornography, CatProvocative,
		CatService, CatCircumvention,
	}
	var out []Domain
	for i := 0; i < opts.N; i++ {
		c := sim.Pick(r, mix)
		out = append(out, Domain{
			Name:            nameFor(r, c, 100000+i),
			Category:        c,
			InRegistry:      true,
			AddedAfterFeb24: r.Bool(opts.AfterFeb24Fraction),
		})
	}
	return out
}

// Names extracts domain names.
func Names(ds []Domain) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// ByCategory buckets domains.
func ByCategory(ds []Domain) map[Category][]Domain {
	out := make(map[Category][]Domain)
	for _, d := range ds {
		out[d.Category] = append(out[d.Category], d)
	}
	return out
}

// CategoryCounts returns sorted (category, count) rows for reporting.
func CategoryCounts(ds []Domain) []struct {
	Category Category
	Count    int
} {
	counts := make(map[Category]int)
	for _, d := range ds {
		counts[d.Category]++
	}
	keys := make([]Category, 0, len(counts))
	for c := range counts {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]struct {
		Category Category
		Count    int
	}, 0, len(keys))
	for _, c := range keys {
		out = append(out, struct {
			Category Category
			Count    int
		}{c, counts[c]})
	}
	return out
}

// HTMLFor renders a synthetic page for a domain: a title, navigation, and
// body text drawn from its category vocabulary. The LDA pipeline consumes
// these exactly as the paper consumed fetched HTML.
func HTMLFor(rng *sim.Rand, d Domain) string {
	r := rng.Fork("html/" + d.Name)
	kws := categoryKeywords[d.Category]
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s - %s</title></head><body>", d.Name, kws[0])
	fmt.Fprintf(&b, "<h1>%s</h1>", d.Name)
	for p := 0; p < 3; p++ {
		b.WriteString("<p>")
		for w := 0; w < 40; w++ {
			if r.Bool(0.6) {
				b.WriteString(sim.Pick(r, kws))
			} else {
				b.WriteString(sim.Pick(r, fillerWords))
			}
			b.WriteByte(' ')
		}
		b.WriteString("</p>")
	}
	b.WriteString("</body></html>")
	return b.String()
}

var fillerWords = []string{
	"the", "and", "for", "with", "this", "that", "from", "here", "more",
	"page", "site", "home", "about", "contact", "terms", "privacy",
}

// Tokenize extracts lowercase word tokens from HTML, dropping tags and
// filler — the preprocessing stage of the clustering pipeline.
func Tokenize(html string) []string {
	var tokens []string
	inTag := false
	var cur strings.Builder
	flush := func() {
		if cur.Len() >= 3 {
			w := strings.ToLower(cur.String())
			if !stopwords[w] {
				tokens = append(tokens, w)
			}
		}
		cur.Reset()
	}
	for _, r := range html {
		switch {
		case r == '<':
			flush()
			inTag = true
		case r == '>':
			inTag = false
		case inTag:
		case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

var stopwords = map[string]bool{
	"the": true, "and": true, "for": true, "with": true, "this": true,
	"that": true, "from": true, "here": true, "more": true, "page": true,
	"site": true, "home": true, "about": true, "contact": true,
	"terms": true, "privacy": true, "html": true, "body": true,
	"head": true, "title": true,
}
