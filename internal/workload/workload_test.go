package workload

import (
	"strings"
	"testing"

	"tspusim/internal/sim"
)

func TestGenTrancoShape(t *testing.T) {
	rng := sim.NewRand(1)
	ds := GenTranco(rng, TrancoOptions{})
	if len(ds) != 10000+1325 {
		t.Fatalf("len = %d, want 11325", len(ds))
	}
	// Paper-named domains are present at top ranks.
	names := map[string]bool{}
	for _, d := range ds[:50] {
		names[d.Name] = true
	}
	for _, want := range []string{"twitter.com", "facebook.com", "play.google.com", "nordvpn.com"} {
		if !names[want] {
			t.Fatalf("missing well-known domain %s", want)
		}
	}
	clbl := 0
	for _, d := range ds {
		if d.FromCLBL {
			clbl++
		}
	}
	if clbl != 1325 {
		t.Fatalf("CLBL count = %d", clbl)
	}
}

func TestGenTrancoDeterministic(t *testing.T) {
	a := GenTranco(sim.NewRand(7), TrancoOptions{N: 500, CLBL: 50})
	b := GenTranco(sim.NewRand(7), TrancoOptions{N: 500, CLBL: 50})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenRegistryShape(t *testing.T) {
	rng := sim.NewRand(2)
	ds := GenRegistry(rng, RegistryOptions{})
	if len(ds) != 10000 {
		t.Fatalf("len = %d", len(ds))
	}
	counts := map[Category]int{}
	after := 0
	for _, d := range ds {
		if !d.InRegistry {
			t.Fatal("registry domain not marked InRegistry")
		}
		counts[d.Category]++
		if d.AddedAfterFeb24 {
			after++
		}
	}
	// Gambling must dominate, media second tier (Fig. 7).
	if counts[CatGambling] < counts[CatTechnology] {
		t.Fatalf("gambling %d not dominant over technology %d", counts[CatGambling], counts[CatTechnology])
	}
	if counts[CatInformativeMedia] < 1000 {
		t.Fatalf("media count = %d", counts[CatInformativeMedia])
	}
	if after < 500 || after > 2500 {
		t.Fatalf("after-Feb-24 count = %d", after)
	}
}

func TestWellKnownConsistency(t *testing.T) {
	for _, wk := range WellKnownDomains() {
		if wk.SNI4 && !wk.SNI1 {
			t.Fatalf("%s: SNI-IV domains are a subset of SNI-I targets (Table 3)", wk.Name)
		}
		if wk.SNI2 && wk.SNI1 {
			t.Fatalf("%s: SNI-II domains are disjoint from SNI-I in Table 3", wk.Name)
		}
	}
}

func TestHTMLAndTokenize(t *testing.T) {
	rng := sim.NewRand(3)
	d := Domain{Name: "casino-hub1.com", Category: CatGambling}
	html := HTMLFor(rng, d)
	if !strings.Contains(html, "<html>") || !strings.Contains(html, d.Name) {
		t.Fatal("HTML malformed")
	}
	toks := Tokenize(html)
	if len(toks) < 50 {
		t.Fatalf("tokens = %d", len(toks))
	}
	hits := 0
	kw := map[string]bool{}
	for _, k := range Keywords(CatGambling) {
		kw[k] = true
	}
	for _, tok := range toks {
		if kw[tok] {
			hits++
		}
		if strings.ContainsAny(tok, "<>") {
			t.Fatalf("tag leak in token %q", tok)
		}
	}
	if hits < 20 {
		t.Fatalf("category keywords in page = %d", hits)
	}
}

func TestTokenizeDropsStopwords(t *testing.T) {
	toks := Tokenize("<p>the casino and the jackpot</p>")
	for _, tok := range toks {
		if tok == "the" || tok == "and" {
			t.Fatalf("stopword leaked: %v", toks)
		}
	}
}

func TestLDARecoverCategories(t *testing.T) {
	// Generate labelled pages from 4 well-separated categories and verify
	// the full pipeline recovers the ground truth for most documents.
	rng := sim.NewRand(11)
	cats := []Category{CatGambling, CatInformativeMedia, CatCircumvention, CatPornography}
	var ds []Domain
	for i := 0; i < 120; i++ {
		c := cats[i%len(cats)]
		ds = append(ds, Domain{Name: nameFor(rng, c, i), Category: c})
	}
	pred := CategorizeDomains(rng, ds, 8, 60)
	correct := 0
	for i, d := range ds {
		if pred[i] == d.Category {
			correct++
		}
	}
	frac := float64(correct) / float64(len(ds))
	if frac < 0.7 {
		t.Fatalf("LDA pipeline accuracy = %.2f, want >= 0.7", frac)
	}
}

func TestLDADeterministic(t *testing.T) {
	rng1, rng2 := sim.NewRand(5), sim.NewRand(5)
	docs := [][]string{
		{"casino", "bets", "poker", "casino"},
		{"news", "journalist", "report"},
		{"casino", "jackpot", "slots"},
		{"media", "press", "editorial"},
	}
	l1, l2 := NewLDA(2), NewLDA(2)
	l1.Fit(docs, 30, rng1)
	l2.Fit(docs, 30, rng2)
	for i := range docs {
		if l1.DocTopic(i) != l2.DocTopic(i) {
			t.Fatal("LDA not deterministic under same seed")
		}
	}
}

func TestLDATopWords(t *testing.T) {
	rng := sim.NewRand(6)
	docs := [][]string{
		{"casino", "bets", "casino", "poker", "casino"},
		{"casino", "jackpot", "bets"},
		{"news", "press", "news", "media", "news"},
		{"journalist", "news", "press"},
	}
	l := NewLDA(2)
	l.Fit(docs, 100, rng)
	// The dominant topic of doc 0 should rank "casino" in its top words.
	top := l.TopWords(l.DocTopic(0), 3)
	found := false
	for _, w := range top {
		if w == "casino" {
			found = true
		}
	}
	if !found {
		t.Fatalf("top words of gambling topic = %v", top)
	}
}

func TestCategoryCounts(t *testing.T) {
	ds := []Domain{
		{Category: CatGambling}, {Category: CatGambling}, {Category: CatDrugs},
	}
	rows := CategoryCounts(ds)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Category == CatGambling && r.Count != 2 {
			t.Fatal("gambling count wrong")
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	if CatInformativeMedia.String() != "Informative Media" {
		t.Fatal("category name wrong")
	}
	if len(Categories()) != 11 {
		t.Fatalf("categories = %d, want 11", len(Categories()))
	}
}

func TestLDAPerplexityImprovesWithFit(t *testing.T) {
	rng := sim.NewRand(23)
	var ds []Domain
	cats := []Category{CatGambling, CatInformativeMedia, CatCircumvention}
	for i := 0; i < 60; i++ {
		c := cats[i%len(cats)]
		ds = append(ds, Domain{Name: nameFor(rng, c, i), Category: c})
	}
	docs := make([][]string, len(ds))
	for i, d := range ds {
		docs[i] = Tokenize(HTMLFor(rng, d))
	}
	short := NewLDA(6)
	short.Fit(docs, 1, sim.NewRand(1))
	long := NewLDA(6)
	long.Fit(docs, 80, sim.NewRand(1))
	ps, pl := short.Perplexity(), long.Perplexity()
	if !(pl > 0 && ps > 0) {
		t.Fatalf("perplexities: short=%v long=%v", ps, pl)
	}
	if pl >= ps {
		t.Fatalf("fit did not improve perplexity: 1 iter = %.1f, 80 iters = %.1f", ps, pl)
	}
}
