package workload

import (
	"math"
	"sort"

	"tspusim/internal/sim"
)

// LDA is a Latent Dirichlet Allocation topic model fit by collapsed Gibbs
// sampling (Blei et al. [35]; the categorization pipeline of Ramesh et
// al. [81] that §6.1 reuses). It clusters tokenized web pages into K topics;
// a Categorizer then maps topics to the Fig. 7 categories via keyword
// overlap.
type LDA struct {
	K     int
	Alpha float64 // document-topic prior
	Beta  float64 // topic-word prior

	vocab   map[string]int
	words   []string
	docs    [][]int // token ids per document
	assign  [][]int // topic assignment per token
	nDocTop [][]int // document x topic counts
	nTopWrd [][]int // topic x word counts
	nTop    []int   // tokens per topic
}

// NewLDA creates a model with K topics and standard smoothing priors.
func NewLDA(k int) *LDA {
	return &LDA{K: k, Alpha: 50.0 / float64(k), Beta: 0.01, vocab: make(map[string]int)}
}

// Fit runs iters sweeps of collapsed Gibbs sampling over the tokenized
// documents. Deterministic given rng.
func (l *LDA) Fit(docs [][]string, iters int, rng *sim.Rand) {
	r := rng.Fork("lda")
	// Build vocabulary and integer docs.
	l.docs = make([][]int, len(docs))
	for di, doc := range docs {
		ids := make([]int, len(doc))
		for wi, w := range doc {
			id, ok := l.vocab[w]
			if !ok {
				id = len(l.words)
				l.vocab[w] = id
				l.words = append(l.words, w)
			}
			ids[wi] = id
		}
		l.docs[di] = ids
	}
	V := len(l.words)
	l.assign = make([][]int, len(l.docs))
	l.nDocTop = make([][]int, len(l.docs))
	l.nTopWrd = make([][]int, l.K)
	l.nTop = make([]int, l.K)
	for t := 0; t < l.K; t++ {
		l.nTopWrd[t] = make([]int, V)
	}
	// Random initialization.
	for di, doc := range l.docs {
		l.assign[di] = make([]int, len(doc))
		l.nDocTop[di] = make([]int, l.K)
		for wi, w := range doc {
			t := r.Intn(l.K)
			l.assign[di][wi] = t
			l.nDocTop[di][t]++
			l.nTopWrd[t][w]++
			l.nTop[t]++
		}
	}
	probs := make([]float64, l.K)
	for it := 0; it < iters; it++ {
		for di, doc := range l.docs {
			for wi, w := range doc {
				old := l.assign[di][wi]
				l.nDocTop[di][old]--
				l.nTopWrd[old][w]--
				l.nTop[old]--
				// Full conditional.
				sum := 0.0
				for t := 0; t < l.K; t++ {
					p := (float64(l.nDocTop[di][t]) + l.Alpha) *
						(float64(l.nTopWrd[t][w]) + l.Beta) /
						(float64(l.nTop[t]) + l.Beta*float64(V))
					probs[t] = p
					sum += p
				}
				u := r.Float64() * sum
				next := 0
				for acc := probs[0]; u > acc && next < l.K-1; {
					next++
					acc += probs[next]
				}
				l.assign[di][wi] = next
				l.nDocTop[di][next]++
				l.nTopWrd[next][w]++
				l.nTop[next]++
			}
		}
	}
}

// DocTopic returns the dominant topic of document di.
func (l *LDA) DocTopic(di int) int {
	best, bestN := 0, -1
	for t, n := range l.nDocTop[di] {
		if n > bestN {
			best, bestN = t, n
		}
	}
	return best
}

// TopWords returns the n highest-probability words of a topic.
func (l *LDA) TopWords(topic, n int) []string {
	type wc struct {
		w string
		c int
	}
	var all []wc
	for wid, c := range l.nTopWrd[topic] {
		if c > 0 {
			all = append(all, wc{l.words[wid], c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}

// Categorizer labels LDA topics with Fig. 7 categories by keyword overlap —
// the "manually merge the topics into 11 categories" step of §6.1, automated
// against the known category vocabularies.
type Categorizer struct {
	lda       *LDA
	topicCat  []Category
	TopicHits []int // diagnostic: keyword hits for the chosen category
}

// NewCategorizer maps each topic of a fitted model to its best category.
func NewCategorizer(l *LDA) *Categorizer {
	c := &Categorizer{lda: l, topicCat: make([]Category, l.K), TopicHits: make([]int, l.K)}
	for t := 0; t < l.K; t++ {
		top := l.TopWords(t, 12)
		bestCat, bestHits := CatErrorPage, 0
		for cat, kws := range categoryKeywords {
			hits := 0
			kwset := make(map[string]bool, len(kws))
			for _, k := range kws {
				kwset[k] = true
			}
			for _, w := range top {
				if kwset[w] {
					hits++
				}
			}
			if hits > bestHits || (hits == bestHits && hits > 0 && cat < bestCat) {
				bestCat, bestHits = cat, hits
			}
		}
		c.topicCat[t] = bestCat
		c.TopicHits[t] = bestHits
	}
	return c
}

// Label returns the category of document di (CatErrorPage when the topic
// matched no vocabulary, the analogue of unparseable/geoblocked pages).
func (c *Categorizer) Label(di int) Category {
	return c.topicCat[c.lda.DocTopic(di)]
}

// CategorizeDomains runs the full §6.1 pipeline: render HTML, tokenize, fit
// LDA, label every domain. Returns predicted categories aligned with ds.
func CategorizeDomains(rng *sim.Rand, ds []Domain, topics, iters int) []Category {
	docs := make([][]string, len(ds))
	for i, d := range ds {
		docs[i] = Tokenize(HTMLFor(rng, d))
	}
	l := NewLDA(topics)
	l.Fit(docs, iters, rng)
	cat := NewCategorizer(l)
	out := make([]Category, len(ds))
	for i := range ds {
		out[i] = cat.Label(i)
	}
	return out
}

// Perplexity computes the held-in perplexity of the fitted model — the
// standard LDA quality metric (lower is better): exp(-sum log p(w|d) / N).
// It lets experiments verify a fit converged rather than trusting iteration
// counts.
func (l *LDA) Perplexity() float64 {
	V := len(l.words)
	var logSum float64
	var n int
	for di, doc := range l.docs {
		docLen := len(doc)
		if docLen == 0 {
			continue
		}
		for _, w := range doc {
			var p float64
			for t := 0; t < l.K; t++ {
				theta := (float64(l.nDocTop[di][t]) + l.Alpha) / (float64(docLen) + l.Alpha*float64(l.K))
				phi := (float64(l.nTopWrd[t][w]) + l.Beta) / (float64(l.nTop[t]) + l.Beta*float64(V))
				p += theta * phi
			}
			logSum += math.Log(p)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(-logSum / float64(n))
}
