package tspusim

// Fleet glue: fan the experiment registry out across (experiment, seed,
// shard) jobs. Each job builds a private lab from a derived seed, so the
// single-threaded Sim stays untouched and parallelism lives strictly at
// whole-simulation granularity — which is what keeps determinism trivial:
// the aggregate report is byte-identical for any worker count.

import (
	"fmt"
	"sync"

	"tspusim/internal/fleet"
	"tspusim/internal/sim"
	"tspusim/internal/topo"
)

// jobSims recycles Sims across fleet jobs: each job Gets an idle Sim, Resets
// it, and builds its lab on top, so the event freelist grown by one job
// serves the next. A job that panics simply never returns its Sim — the pool
// hands the next caller a fresh one.
var jobSims = sync.Pool{New: func() any { return sim.New() }}

// JobRunner returns the fleet RunFunc that builds a per-job lab from base
// options (with the job's derived seed, and the endpoint population split
// across shards) and executes the job's experiment on it.
func JobRunner(base Options) fleet.RunFunc {
	return func(job fleet.Job) (string, []fleet.Stat, error) {
		e, ok := Find(job.Exp)
		if !ok {
			return "", nil, fmt.Errorf("tspusim: unknown experiment %q", job.Exp)
		}
		opts := base
		opts.Seed = job.Seed
		if job.Shards > 1 && opts.Endpoints > 0 {
			opts.Endpoints /= job.Shards
			if opts.Endpoints < 1 {
				opts.Endpoints = 1
			}
		}
		s := jobSims.Get().(*sim.Sim)
		s.Reset()
		lab := topo.BuildOn(s, opts)
		var out string
		var stats []fleet.Stat
		if e.Stats != nil {
			out, stats = e.Stats(lab)
		} else {
			out = e.Run(lab)
			stats = fleet.ExtractStats(out)
		}
		jobSims.Put(s)
		return e.Header() + "\n" + out, stats, nil
	}
}

// RunFleet plans and executes ids × seeds × shards jobs over the worker pool
// configured by cfg. base.Seed is the root seed every job seed is derived
// from; the returned report's RenderAggregate is identical for any
// cfg.Workers value.
//
//tspuvet:impure fleet orchestration reads wall time for worker metrics; aggregate report bytes are seed-pure
func RunFleet(base Options, ids []string, seeds, shards int, cfg fleet.Config) *fleet.Report {
	jobs := fleet.Plan(base.Seed, ids, seeds, shards)
	return fleet.NewRunner(cfg).Run(jobs, JobRunner(base))
}
