package tspusim

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benchmarks DESIGN.md calls out and datapath microbenchmarks.
// Regeneration benches measure the cost of rebuilding the artifact from a
// fresh deterministic lab; ablations compare design choices of the device.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"tspusim/internal/fleet"
	"tspusim/internal/hostnet"
	"tspusim/internal/measure"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

func benchOpts(seed uint64) Options {
	return Options{Seed: seed, Endpoints: 200, ASes: 12, EchoServers: 50, TrancoN: 200, RegistryN: 200}
}

// benchExperiment runs one registry experiment per iteration on a fresh lab.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		lab := NewLab(benchOpts(uint64(i + 1)))
		out, err := Run(lab, id)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkTable1_TriggerReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := NewLab(benchOpts(uint64(i + 1)))
		res := measure.Reliability(lab, 500)
		if len(res.Failures) != 3 {
			b.Fatal("missing vantages")
		}
	}
}

func BenchmarkTable2_StateTimeouts(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3_DomainBehaviors(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4_EchoMeasurements(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5_Correlation(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkTable7_ConntrackProfiles(b *testing.B) { benchExperiment(b, "table7") }
func BenchmarkTable8_SequenceTimeouts(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkFig2_Behaviors(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkFig3_Fragmentation(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig6_DomainSets(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7_Categories(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8_PartialVisibility(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9_PortScan(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10_Traceroutes(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig12_HopHistogram(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13_CHFuzz(b *testing.B)             { benchExperiment(b, "fig13") }
func BenchmarkFig14_QUICFingerprint(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkSNI3_Throttle(b *testing.B)            { benchExperiment(b, "sni3") }
func BenchmarkLocalize_TTL(b *testing.B)             { benchExperiment(b, "localize") }
func BenchmarkUSValidation_FragLimits(b *testing.B)  { benchExperiment(b, "usval") }
func BenchmarkCircumvention_Matrix(b *testing.B)     { benchExperiment(b, "circum") }

func BenchmarkFig4_Sequences(b *testing.B) {
	// Length 2 keeps the per-iteration cost sane; the full length-3 tree is
	// the fig4 experiment.
	for i := 0; i < b.N; i++ {
		lab := NewLab(benchOpts(uint64(i + 1)))
		res := measure.ExploreSequences(lab, topo.ERTelecom, 2)
		if len(res.Verdicts) == 0 {
			b.Fatal("no verdicts")
		}
	}
}

// --- Datapath microbenchmarks -------------------------------------------

// benchPipe is a no-op pipe for direct Device.Handle calls.
type benchPipe struct{ s *sim.Sim }

func (p benchPipe) Inject(pkt *packet.Packet, dir netem.Direction) {}
func (p benchPipe) Now() time.Duration                             { return p.s.Now() }
func (p benchPipe) After(d time.Duration, fn func())               {}

func benchDevice(cfg func(*tspu.Config)) (*tspu.Device, *sim.Sim) {
	s := sim.New()
	c := tspu.Config{Sim: s, LocalDir: netem.AtoB}
	if cfg != nil {
		cfg(&c)
	}
	d := tspu.NewDevice(c)
	ctl := tspu.NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *tspu.Policy) { p.SNI1Domains.Add("facebook.com") })
	return d, s
}

var benchSrc = packet.MustAddr("10.0.0.2")
var benchDst = packet.MustAddr("203.0.113.10")

func BenchmarkDevice_PassThroughData(b *testing.B) {
	d, s := benchDevice(nil)
	pipe := benchPipe{s}
	pkt := packet.NewTCP(benchSrc, benchDst, 40000, 443, packet.FlagsPSHACK, 1, 1, make([]byte, 1400))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Handle(pipe, pkt, netem.AtoB)
	}
}

func BenchmarkDevice_TriggerDetection(b *testing.B) {
	d, s := benchDevice(nil)
	pipe := benchPipe{s}
	ch := (&tlsx.ClientHelloSpec{ServerName: "not-blocked.example"}).Build()
	pkt := packet.NewTCP(benchSrc, benchDst, 40000, 443, packet.FlagsPSHACK, 1, 1, ch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Handle(pipe, pkt, netem.AtoB)
	}
}

func BenchmarkDevice_ManyFlows(b *testing.B) {
	d, s := benchDevice(nil)
	pipe := benchPipe{s}
	pkts := make([]*packet.Packet, 1024)
	for i := range pkts {
		pkts[i] = packet.NewTCP(benchSrc, benchDst, uint16(20000+i), 443, packet.FlagSYN, 1, 0, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Handle(pipe, pkts[i%len(pkts)], netem.AtoB)
	}
}

// --- Ablations (DESIGN.md) ----------------------------------------------

// BenchmarkAblation_FragForwarding compares the TSPU's hold-and-release
// fragment forwarding against a reassembling middlebox on the same fragment
// stream.
func BenchmarkAblation_FragForwarding(b *testing.B) {
	mk := func() []*packet.Packet {
		p := packet.NewTCP(benchSrc, benchDst, 40000, 443, packet.FlagSYN, 1, 0, make([]byte, 1024))
		frags, err := packet.FragmentCount(p, 8)
		if err != nil {
			b.Fatal(err)
		}
		return frags
	}
	b.Run("tspu-hold-and-release", func(b *testing.B) {
		d, s := benchDevice(nil)
		pipe := benchPipe{s}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frags := mk()
			for j, f := range frags {
				f.IP.ID = uint16(i) // fresh queue per iteration
				_ = j
				d.Handle(pipe, f, netem.AtoB)
			}
		}
	})
	b.Run("reassembling-middlebox", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frags := mk()
			for _, f := range frags {
				f.IP.ID = uint16(i)
			}
			if _, err := packet.Reassemble(frags); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_SNIMatch compares structural ClientHello parsing (what
// the TSPU does, per Fig. 13) against naive whole-payload substring search.
func BenchmarkAblation_SNIMatch(b *testing.B) {
	ch := (&tlsx.ClientHelloSpec{ServerName: "facebook.com", PaddingLen: 400}).Build()
	b.Run("structural-parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			info, err := tlsx.ParseClientHello(ch)
			if err != nil || info.ServerName == "" {
				b.Fatal("parse failed")
			}
		}
	})
	b.Run("substring-scan", func(b *testing.B) {
		needle := []byte("facebook.com")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !containsSub(ch, needle) {
				b.Fatal("miss")
			}
		}
	})
}

func containsSub(hay, needle []byte) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		j := 0
		for ; j < len(needle) && hay[i+j] == needle[j]; j++ {
		}
		if j == len(needle) {
			return true
		}
	}
	return false
}

// BenchmarkAblation_RoleInference measures the split-handshake evasion rate
// with the production role heuristic vs the StrictRoles patch.
func BenchmarkAblation_RoleInference(b *testing.B) {
	run := func(b *testing.B, strict bool) {
		evaded := 0
		for i := 0; i < b.N; i++ {
			s := sim.New()
			n := netem.New(s)
			client := n.AddHost("c")
			server := n.AddHost("s")
			ci := client.AddIface(packet.MustAddr("10.0.0.2"))
			si := server.AddIface(packet.MustAddr("203.0.113.10"))
			link := n.Connect(ci, si, time.Millisecond)
			client.AddDefaultRoute(ci)
			server.AddDefaultRoute(si)
			d := tspu.NewDevice(tspu.Config{Sim: s, LocalDir: netem.AtoB, StrictRoles: strict})
			ctl := tspu.NewController(nil)
			ctl.Register(d)
			ctl.Update(func(p *tspu.Policy) { p.SNI1Domains.Add("meduza.io") })
			link.Attach(d)
			cs := hostnet.NewStack(n, client)
			ss := hostnet.NewStack(n, server)
			ss.Listen(443, hostnet.ListenOptions{SplitHandshake: true,
				OnData: func(c *hostnet.TCPConn, data []byte) { c.Send([]byte("OK")) }})
			conn := cs.Dial(ss.Addr(), 443, hostnet.DialOptions{})
			conn.OnEstablished = func() {
				conn.Send((&tlsx.ClientHelloSpec{ServerName: "meduza.io"}).Build())
			}
			s.Run()
			if !conn.ResetSeen && len(conn.Received) > 0 {
				evaded++
			}
		}
		b.ReportMetric(float64(evaded)/float64(b.N), "evasion-rate")
	}
	b.Run("syn-heuristic", func(b *testing.B) { run(b, false) })
	b.Run("strict-roles", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblation_TCPReassembly compares per-packet SNI inspection (the
// TSPU) against stream reassembly (GFW-style) on segmented ClientHellos:
// the reassembling device catches them, at a per-flow buffering cost.
func BenchmarkAblation_TCPReassembly(b *testing.B) {
	run := func(b *testing.B, reassemble bool) {
		caught := 0
		d, s := benchDevice(func(c *tspu.Config) { c.ReassembleTCP = reassemble })
		pipe := benchPipe{s}
		ch := (&tlsx.ClientHelloSpec{ServerName: "facebook.com", PaddingLen: 300}).Build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sport := uint16(20000 + i%30000)
			seg := 64
			for off := 0; off < len(ch); off += seg {
				end := off + seg
				if end > len(ch) {
					end = len(ch)
				}
				pkt := packet.NewTCP(benchSrc, benchDst, sport, 443, packet.FlagsPSHACK, uint32(off), 1, ch[off:end])
				d.Handle(pipe, pkt, netem.AtoB)
			}
		}
		b.StopTimer()
		if d.Stats().Triggers[tspu.SNI1] > 0 {
			caught = d.Stats().Triggers[tspu.SNI1]
		}
		b.ReportMetric(float64(caught)/float64(b.N), "detections/op")
	}
	b.Run("per-packet", func(b *testing.B) { run(b, false) })
	b.Run("stream-reassembly", func(b *testing.B) { run(b, true) })
}

// BenchmarkLabBuild measures topology construction cost at the default
// laptop scale.
func BenchmarkLabBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lab := NewLab(benchOpts(uint64(i + 1)))
		if len(lab.Endpoints) == 0 {
			b.Fatal("empty lab")
		}
	}
}

// BenchmarkAblation_InspectDepth sweeps the SNI parser's inspection depth
// and reports whether the padding-before-SNI evasion survives at each: the
// paper's padding strategy works only because the real device's inspection
// is bounded; a deeper parser patches it at linear extra cost.
func BenchmarkAblation_InspectDepth(b *testing.B) {
	padded := (&tlsx.ClientHelloSpec{
		ServerName: "facebook.com",
		ExtraExts:  []tlsx.Extension{{Type: tlsx.ExtensionPadding, Data: make([]byte, 600)}},
	}).Build()
	for _, depth := range []int{256, 512, 1024, 4096} {
		depth := depth
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			d, s := benchDevice(func(c *tspu.Config) { c.InspectDepth = depth })
			pipe := benchPipe{s}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pkt := packet.NewTCP(benchSrc, benchDst, uint16(20000+i%30000), 443,
					packet.FlagsPSHACK, 1, 1, padded)
				d.Handle(pipe, pkt, netem.AtoB)
			}
			b.StopTimer()
			caught := d.Stats().Triggers[tspu.SNI1] > 0
			evaded := 0.0
			if !caught {
				evaded = 1.0
			}
			b.ReportMetric(evaded, "padding-evades")
		})
	}
}

// --- Fleet orchestration ------------------------------------------------

// BenchmarkFleet_AllExperiments fans the full experiment registry across the
// worker pool, one whole-simulation job per experiment. The workers=1 case
// is the sequential baseline; on an 8-core runner workers=8 should finish
// the sweep ≥3× faster (jobs are independent CPU-bound simulations). The
// internal speedup estimate (summed job time / elapsed) is reported as a
// benchmark metric so the perf trajectory tracks parallel efficiency too.
func BenchmarkFleet_AllExperiments(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			speedup := 0.0
			for i := 0; i < b.N; i++ {
				opts := benchOpts(uint64(i + 1))
				rep := RunFleet(opts, IDs(), 1, 1, fleet.Config{Workers: workers})
				if n := len(rep.Failed()); n > 0 {
					b.Fatalf("%d jobs failed: %v", n, rep.Failed()[0].Err)
				}
				speedup += rep.Metrics.Speedup()
			}
			b.ReportMetric(speedup/float64(b.N), "speedup")
		})
	}
}

// BenchmarkFleet_MultiSeedTable1 is the paper-scale axis: Table 1's failure
// rates across many derived seeds (20 seeds × 2,000 trials ≈ the paper's
// 20,000-trial estimates) — the workload -seeds/-workers exist for.
func BenchmarkFleet_MultiSeedTable1(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := benchOpts(uint64(i + 1))
				rep := RunFleet(opts, []string{"table1"}, 8, 1, fleet.Config{Workers: workers})
				if len(rep.Failed()) > 0 {
					b.Fatal(rep.Failed()[0].Err)
				}
			}
		})
	}
}

// Extension-experiment benches: regeneration cost of the artifacts that go
// beyond the paper (DESIGN.md "Extensions").
func BenchmarkExt_Observatory(b *testing.B) { benchExperiment(b, "observatory") }
func BenchmarkExt_Timeline(b *testing.B)    { benchExperiment(b, "timeline") }
func BenchmarkExt_Exhaust(b *testing.B)     { benchExperiment(b, "exhaust") }
func BenchmarkExt_Evolve(b *testing.B)      { benchExperiment(b, "evolve") }
func BenchmarkExt_Residual(b *testing.B)    { benchExperiment(b, "residual") }
func BenchmarkExt_WebConn(b *testing.B)     { benchExperiment(b, "webconn") }
func BenchmarkExt_Propagation(b *testing.B) { benchExperiment(b, "propagation") }
