// Command tspu-vet enforces the determinism, hot-path, and ownership
// contracts of DESIGN.md: every experiment's output must be a pure function
// of the lab seed, the per-packet path must not allocate, a middlebox must
// not retain a packet it did not clone, lane-parallel code must stay inside
// its own shard, pooled records must not be touched after release, and
// switches over closed state enums must stay exhaustive. It runs ten
// analyzers — walltime, globalrand, maporder, hotpath, synccheck,
// retaincheck, lanecheck, poolcheck, statecheck, allowdirective — over the
// module (see internal/lint for what each forbids and why).
//
// The analysis is whole-program: analyzers export facts about package-level
// objects (purity taint, allocation summaries, packet retention, lane entry
// points, closed-enum membership) that are threaded through the packages in
// dependency order, so a contract violation two packages away surfaces at
// the call site that commits it.
//
// Standalone, over package patterns (the make lint target; facts travel
// in memory):
//
//	tspu-vet ./...
//	tspu-vet -maporder=false ./internal/measure
//
// Or as a vet tool, which also covers test files (facts travel between
// units as the .vetx files the go command schedules):
//
//	go vet -vettool=$(which tspu-vet) ./...
//
// The escape-analysis gate compares the compiler's heap-escape diagnostics
// for the annotated hot-path packages against a committed baseline:
//
//	tspu-vet -escapes            # fail on any escape not in ESCAPES_baseline.json
//	tspu-vet -escapes -update    # refresh the baseline after a reviewed change
//
// Violations that are deliberate carry an inline justification:
//
//	start := time.Now() //tspuvet:allow walltime: orchestrator metrics are diagnostic only
//
// Hot-path roots are declared with //tspuvet:hotpath on the function's doc
// comment; //tspuvet:coldpath <reason> cuts a callee out of the contract.
// Lane entry points carry //tspuvet:lane, per-lane types //tspuvet:laneowned,
// and deliberate packet retention is declared where it happens:
//
//	c.ring = append(c.ring, pkt) //tspuvet:retains the capture owns its tap copies
//
// //tspuvet:retains is retaincheck's own suppression verb: the reason is
// mandatory, and the directive turns into a diagnostic the moment the
// annotated line stops retaining anything.
//
// tspu-vet exits non-zero if any diagnostic survives suppression; an unused
// or malformed //tspuvet:allow is itself a diagnostic, so the allowlist
// cannot rot.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"tspusim/internal/lint"
	"tspusim/internal/lint/analysis"
	"tspusim/internal/lint/driver"
	"tspusim/internal/lint/escape"
)

// hotPathPackages is the default scope of the escape gate: the packages
// carrying //tspuvet:hotpath annotations.
var hotPathPackages = []string{
	"./internal/sim",
	"./internal/packet",
	"./internal/tlsx",
	"./internal/tspu",
	"./internal/engine",
}

func main() {
	// The go command probes vet tools before use: `tspu-vet -V=full` must
	// print a stable identity line, `tspu-vet -flags` the supported flags.
	if len(os.Args) == 2 && os.Args[0] != "" {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlags()
			return
		}
	}

	fs := flag.NewFlagSet("tspu-vet", flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	jsonFlag := fs.Bool("json", false, "emit JSON diagnostics instead of text")
	escapesFlag := fs.Bool("escapes", false, "run the escape-analysis gate instead of the analyzers")
	updateFlag := fs.Bool("update", false, "with -escapes: rewrite the baseline instead of diffing against it")
	baselineFlag := fs.String("baseline", "ESCAPES_baseline.json", "with -escapes: baseline file")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted for go vet compatibility)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tspu-vet [flags] [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "       tspu-vet -escapes [-update] [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "       tspu-vet [flags] unit.cfg   (go vet -vettool protocol)\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	args := fs.Args()

	if *escapesFlag {
		os.Exit(runEscapes(args, *baselineFlag, *updateFlag))
	}

	var analyzers []*analysis.Analyzer
	ran := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
			ran[a.Name] = true
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(driver.RunUnitchecker(args[0], analyzers, ran, func(diags []driver.Diagnostic) {
			emit(diags, *jsonFlag)
		}))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := driver.Check("", args, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		os.Exit(1)
	}
	emit(diags, *jsonFlag)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runEscapes implements the escape-analysis gate. Exit codes: 0 clean,
// 1 failure (new escape, or no baseline to diff against).
func runEscapes(patterns []string, baselinePath string, update bool) int {
	if len(patterns) == 0 {
		patterns = hotPathPackages
	}
	current, err := escape.Collect("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspu-vet -escapes:", err)
		return 1
	}
	if update {
		if err := current.Save(baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "tspu-vet -escapes:", err)
			return 1
		}
		fmt.Printf("tspu-vet: wrote %s (%d escapes under %s)\n", baselinePath, len(current.Escapes), current.GoVersion)
		return 0
	}
	baseline, err := escape.Load(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tspu-vet -escapes: %v (run `tspu-vet -escapes -update` to create the baseline)\n", err)
		return 1
	}
	if baseline.GoVersion != runtime.Version() {
		fmt.Fprintf(os.Stderr, "tspu-vet -escapes: warning: baseline recorded under %s, running %s; escape analysis can differ across toolchains\n",
			baseline.GoVersion, runtime.Version())
	}
	added, removed := escape.Diff(baseline, current)
	for _, r := range removed {
		fmt.Fprintf(os.Stderr, "tspu-vet -escapes: note: baseline escape no longer produced: %s (refresh with -update)\n", r)
	}
	if len(added) > 0 {
		for _, a := range added {
			fmt.Fprintf(os.Stderr, "tspu-vet -escapes: new heap escape: %s\n", a)
		}
		fmt.Fprintf(os.Stderr, "tspu-vet -escapes: %d new heap escape(s) not in %s; fix them or record the decision with -update\n",
			len(added), baselinePath)
		return 1
	}
	return 0
}

func emit(diags []driver.Diagnostic, asJSON bool) {
	if asJSON {
		type jsonDiag struct {
			Posn     string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{Posn: d.Pos.String(), Analyzer: d.Analyzer, Message: d.Message})
		}
		json.NewEncoder(os.Stdout).Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
}

// printVersion emits the identity line the go command hashes for its build
// cache, in the same shape x/tools' unitchecker uses.
func printVersion() {
	exe, err := os.Executable()
	if err == nil {
		if data, rerr := os.ReadFile(exe); rerr == nil {
			fmt.Printf("tspu-vet version devel comments-go-here buildID=%02x\n", sha256.Sum256(data))
			return
		}
	}
	fmt.Println("tspu-vet version devel comments-go-here buildID=unknown")
}

// printFlags describes the tool's flags as JSON so the go command can vet
// which command-line flags it may forward. The escape-gate flags are
// standalone-only and deliberately absent: go vet must never forward them.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range lint.Analyzers() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out = append(out,
		jsonFlag{Name: "json", Bool: true, Usage: "emit JSON diagnostics"},
		jsonFlag{Name: "c", Bool: false, Usage: "display context lines"},
	)
	data, _ := json.Marshal(out)
	fmt.Println(string(data))
}
