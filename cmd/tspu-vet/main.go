// Command tspu-vet enforces the determinism contract of DESIGN.md: every
// experiment's output must be a pure function of the lab seed. It runs four
// analyzers — walltime, globalrand, maporder, allowdirective — over the
// module (see internal/lint for what each forbids and why).
//
// Standalone, over package patterns (the make lint target):
//
//	tspu-vet ./...
//	tspu-vet -maporder=false ./internal/measure
//
// Or as a vet tool, which also covers test files:
//
//	go vet -vettool=$(which tspu-vet) ./...
//
// Violations that are deliberate carry an inline justification:
//
//	start := time.Now() //tspuvet:allow walltime: orchestrator metrics are diagnostic only
//
// tspu-vet exits non-zero if any diagnostic survives suppression; an unused
// or malformed //tspuvet:allow is itself a diagnostic, so the allowlist
// cannot rot.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"tspusim/internal/lint"
	"tspusim/internal/lint/analysis"
	"tspusim/internal/lint/driver"
)

func main() {
	// The go command probes vet tools before use: `tspu-vet -V=full` must
	// print a stable identity line, `tspu-vet -flags` the supported flags.
	if len(os.Args) == 2 && os.Args[0] != "" {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlags()
			return
		}
	}

	fs := flag.NewFlagSet("tspu-vet", flag.ExitOnError)
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	jsonFlag := fs.Bool("json", false, "emit JSON diagnostics instead of text")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted for go vet compatibility)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tspu-vet [flags] [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "       tspu-vet [flags] unit.cfg   (go vet -vettool protocol)\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	var analyzers []*analysis.Analyzer
	ran := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
			ran[a.Name] = true
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], analyzers, ran, *jsonFlag))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := driver.Check("", args, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		os.Exit(1)
	}
	emit(diags, *jsonFlag)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func emit(diags []driver.Diagnostic, asJSON bool) {
	if asJSON {
		type jsonDiag struct {
			Posn     string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{Posn: d.Pos.String(), Analyzer: d.Analyzer, Message: d.Message})
		}
		json.NewEncoder(os.Stdout).Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
}

// unitConfig mirrors the JSON configuration the go command hands a vet tool
// for each package (x/tools' unitchecker.Config).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one package under the go vet protocol: read the
// .cfg, type-check against the export data the go command already built,
// report diagnostics on stderr, and write the (empty — the suite exchanges
// no facts) .vetx output the go command expects. Exit codes follow cmd/vet:
// 0 clean, 1 tool failure, 2 diagnostics.
func runUnitchecker(cfgFile string, analyzers []*analysis.Analyzer, ran map[string]bool, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tspu-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Facts-only request for a dependency; the suite has no facts.
		writeVetx()
		return 0
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if resolved, ok := cfg.ImportMap[path]; ok {
			path = resolved
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	diags, err := driver.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles, analyzers, ran)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure && strings.Contains(err.Error(), "type-checking") {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		return 1
	}
	writeVetx()
	emit(diags, asJSON)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion emits the identity line the go command hashes for its build
// cache, in the same shape x/tools' unitchecker uses.
func printVersion() {
	exe, err := os.Executable()
	if err == nil {
		if data, rerr := os.ReadFile(exe); rerr == nil {
			fmt.Printf("tspu-vet version devel comments-go-here buildID=%02x\n", sha256.Sum256(data))
			return
		}
	}
	fmt.Println("tspu-vet version devel comments-go-here buildID=unknown")
}

// printFlags describes the tool's flags as JSON so the go command can vet
// which command-line flags it may forward.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range lint.Analyzers() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out = append(out,
		jsonFlag{Name: "json", Bool: true, Usage: "emit JSON diagnostics"},
		jsonFlag{Name: "c", Bool: false, Usage: "display context lines"},
	)
	data, _ := json.Marshal(out)
	fmt.Println(string(data))
}
