// Command tspu-bench is the benchmark-regression gate. It parses `go test
// -bench` output (stdin or -in), compares it against a committed baseline,
// and exits nonzero when any baseline benchmark regressed — more than
// -threshold fractional ns/op growth, or ANY increase in B/op or allocs/op
// (allocation behavior is deterministic; there is no noise to tolerate).
//
// Typical use (see make bench / make bench-update):
//
//	go test -run '^$' -bench 'BenchmarkDevice_' -benchmem -count 3 . | tspu-bench -baseline BENCH_device.json
//	go test -run '^$' -bench 'BenchmarkDevice_' -benchmem -count 3 . | tspu-bench -baseline BENCH_device.json -update
//
// tspu-bench never runs benchmarks itself: it transforms bytes to a verdict,
// so the tool is deterministic and tspu-vet-clean by construction.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tspusim/internal/perfstat"
)

func main() {
	var (
		in        = flag.String("in", "-", "bench output file, or - for stdin")
		baseline  = flag.String("baseline", "BENCH_device.json", "baseline JSON path")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		threshold = flag.Float64("threshold", 0.25, "allowed fractional ns/op growth (0.25 = 25%)")
		note      = flag.String("note", "", "provenance note stored in the baseline on -update")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	results, err := perfstat.ParseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results in input (did the bench run fail?)"))
	}

	if *update {
		f, err := os.Create(*baseline)
		if err != nil {
			fatal(err)
		}
		if err := perfstat.WriteBaseline(f, perfstat.Baseline{Note: *note, Results: results}); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("tspu-bench: wrote %d benchmarks to %s\n", len(results), *baseline)
		return
	}

	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(fmt.Errorf("%w (run with -update to create the baseline)", err))
	}
	base, err := perfstat.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	deltas := perfstat.Compare(base, results, *threshold)
	for _, d := range deltas {
		fmt.Println(d)
	}
	if bad := perfstat.Failures(deltas); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "tspu-bench: %d of %d benchmarks regressed against %s (threshold %.0f%%, allocations exact)\n",
			len(bad), len(deltas), *baseline, *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("tspu-bench: %d benchmarks within budget (threshold %.0f%%, allocations exact)\n", len(deltas), *threshold*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tspu-bench:", err)
	os.Exit(1)
}
