// Command tspu-scan runs the §7.2 remote measurements standalone: the
// fragmentation-fingerprint scan (Fig. 9), optional Tor-IP correlation
// (Table 5), and optional per-device localization (Fig. 12):
//
//	tspu-scan -endpoints 2000 -tor -localize
package main

import (
	"flag"
	"fmt"

	"tspusim"
	"tspusim/internal/measure"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "lab seed")
		endpoints = flag.Int("endpoints", 2000, "RU endpoint population")
		ases      = flag.Int("ases", 40, "endpoint AS count")
		tor       = flag.Bool("tor", false, "correlate with Tor-node IP probes (Table 5)")
		localize  = flag.Bool("localize", false, "localize each detected device (Fig. 12)")
	)
	flag.Parse()

	lab := tspusim.NewLab(tspusim.Options{
		Seed: *seed, Endpoints: *endpoints, ASes: *ases,
		TrancoN: 100, RegistryN: 100,
	})
	fmt.Printf("scanning %d endpoints across %d ASes from the Paris machine...\n",
		len(lab.Endpoints), len(lab.ASes))

	scan := measure.FragScan(lab, *tor, *localize)
	fmt.Print(scan.Render(lab.PaperScale()))
	if *tor {
		fmt.Print(scan.Table5Frag().String())
	}
	if *localize {
		fmt.Print(scan.HopHist.String())
		fmt.Printf("within two hops of destination: %.1f%% (paper: ~69%%)\n",
			100*scan.HopHist.FracAtOrBelow(2))
	}
}
