// Command tspu-lab regenerates the paper's tables and figures against a
// freshly built lab. Each experiment gets its own deterministic lab so runs
// are independent and reproducible:
//
//	tspu-lab -list
//	tspu-lab -exp table1,fig4
//	tspu-lab -exp all -seed 7 -endpoints 4000 -ases 160
//
// Multi-seed fleet runs fan (experiment, seed, shard) jobs across workers
// and aggregate the per-seed statistics; the aggregate report is
// byte-identical for any -workers value:
//
//	tspu-lab -exp table1 -seeds 20 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tspusim"
	"tspusim/internal/fleet"
	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
)

//tspuvet:impure command-line driver; wall time reaches only stderr progress and metrics
func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		seed      = flag.Uint64("seed", 1, "lab seed")
		endpoints = flag.Int("endpoints", 2000, "RU endpoint population (paper: 4,005,138)")
		ases      = flag.Int("ases", 40, "endpoint AS count (paper: 4,986)")
		echo      = flag.Int("echo", 140, "echo server count (paper: 1,404)")
		tranco    = flag.Int("tranco", 2000, "Tranco list size (paper: 11,325)")
		registry  = flag.Int("registry", 2000, "registry sample size (paper: 10,000)")
		pcapPath  = flag.String("pcap", "", "write a Fig. 2-style SNI-I blocking capture to this .pcap file and exit")
		outDir    = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
		workers   = flag.Int("workers", 0, "fleet worker goroutines (0 = sequential legacy path)")
		seeds     = flag.Int("seeds", 1, "replicas per experiment, each on a derived seed")
		shards    = flag.Int("shards", 1, "split the endpoint population across this many shards per replica")
		timeout   = flag.Duration("timeout", 0, "per-job timeout for fleet runs (0 = none)")
	)
	flag.Parse()

	if *list {
		for _, e := range tspusim.Experiments() {
			fmt.Printf("%-10s %-45s %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	if *pcapPath != "" {
		if err := writeBlockingPCAP(*pcapPath, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "pcap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in Wireshark: the ServerHello comes back as RST/ACK)\n", *pcapPath)
		return
	}

	ids := tspusim.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	opts := tspusim.Options{
		Seed:      *seed,
		Endpoints: *endpoints,
		ASes:      *ases,
		EchoServers: func() int {
			if *echo > 0 {
				return *echo
			}
			return 140
		}(),
		TrancoN:   *tranco,
		RegistryN: *registry,
	}

	var clean []string
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id != "" {
			clean = append(clean, id)
		}
	}

	if *workers > 0 || *seeds > 1 || *shards > 1 {
		if runFleet(clean, opts, *seeds, *shards, *workers, *timeout, *outDir) {
			os.Exit(1)
		}
		return
	}

	var okIDs, failedIDs []string
	for _, id := range clean {
		lab := tspusim.NewLab(opts)
		start := time.Now() //tspuvet:allow walltime: per-experiment timing is stderr progress, never experiment output
		out, err := tspusim.Run(lab, id)
		fmt.Fprintf(os.Stderr, "%s [%.2fs]\n", id, time.Since(start).Seconds()) //tspuvet:allow walltime: stderr progress only
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			failedIDs = append(failedIDs, id)
			continue
		}
		fmt.Println(out)
		ok := true
		if *outDir != "" {
			if err := writeOut(*outDir, id+".txt", out); err != nil {
				fmt.Fprintln(os.Stderr, "out:", err)
				ok = false
			}
		}
		if ok {
			okIDs = append(okIDs, id)
		} else {
			failedIDs = append(failedIDs, id)
		}
	}
	fmt.Print(summaryLine(len(okIDs), failedIDs))
	if len(failedIDs) > 0 {
		os.Exit(1)
	}
}

// runFleet drives the parallel multi-seed path and reports whether any job
// failed. The aggregate report goes to stdout; progress and timing metrics
// go to stderr so stdout stays byte-identical across worker counts.
//
//tspuvet:impure fleet metrics and progress are wall-clocked diagnostics on stderr; stdout is seed-pure
func runFleet(ids []string, opts tspusim.Options, seeds, shards, workers int, timeout time.Duration, outDir string) bool {
	cfg := fleet.Config{
		Workers: workers,
		Timeout: timeout,
		Retries: 1,
		Backoff: 100 * time.Millisecond,
	}
	total := len(ids) * seeds * shards
	if stderrIsTerminal() {
		cfg.OnUpdate = func(s fleet.Snapshot) {
			fmt.Fprintf(os.Stderr, "\rfleet: %d/%d done, %d running, %d failed   ", s.Done, total, s.Running, s.Failed)
		}
	}
	rep := tspusim.RunFleet(opts, ids, seeds, shards, cfg)
	if cfg.OnUpdate != nil {
		fmt.Fprintln(os.Stderr)
	}
	fmt.Print(rep.RenderAggregate())
	fmt.Fprintln(os.Stderr, rep.Metrics.String())
	for _, res := range rep.Failed() {
		if pe, ok := res.Err.(*fleet.PanicError); ok {
			fmt.Fprintf(os.Stderr, "--- stack for %s ---\n%s", res.Job.Label(), pe.Stack)
		}
	}
	failed := len(rep.Failed()) > 0
	if outDir != "" {
		for _, res := range rep.Results {
			if res.Failed() {
				continue
			}
			name := fmt.Sprintf("%s.seed%d.shard%d.txt", res.Job.Exp, res.Job.SeedIndex, res.Job.Shard)
			if err := writeOut(outDir, name, res.Output); err != nil {
				fmt.Fprintln(os.Stderr, "out:", err)
				failed = true
			}
		}
		if err := writeOut(outDir, "aggregate.txt", rep.RenderAggregate()); err != nil {
			fmt.Fprintln(os.Stderr, "out:", err)
			failed = true
		}
	}
	return failed
}

// summaryLine renders the batch diagnosability footer: "N ok, M failed: ids".
func summaryLine(ok int, failedIDs []string) string {
	s := fmt.Sprintf("%d ok, %d failed", ok, len(failedIDs))
	if len(failedIDs) > 0 {
		s += ": " + strings.Join(failedIDs, ", ")
	}
	return s + "\n"
}

func writeOut(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if !strings.HasSuffix(content, "\n") {
		content += "\n"
	}
	return os.WriteFile(dir+"/"+name, []byte(content), 0o644)
}

func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// writeBlockingPCAP captures an SNI-I blocking exchange on the vantage's
// device link and writes it as a real pcap file.
func writeBlockingPCAP(path string, seed uint64) error {
	lab := tspusim.NewLab(tspusim.Options{Seed: seed, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	v := lab.Vantages[topo.ERTelecom]
	cap := netem.NewCapture("fig2")
	v.SymLink.Tap(cap)

	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) {
			c.Send([]byte("SERVERHELLO....."))
			c.Send([]byte("CERTIFICATE....."))
		},
	})
	conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
	ch := (&tlsx.ClientHelloSpec{ServerName: "twitter.com"}).Build()
	conn.OnEstablished = func() { conn.Send(ch) }
	lab.Sim.Run()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Include entries so both sides of the device's rewrite are visible.
	return cap.WritePCAP(f, true)
}
