// Command tspu-lab regenerates the paper's tables and figures against a
// freshly built lab. Each experiment gets its own deterministic lab so runs
// are independent and reproducible:
//
//	tspu-lab -list
//	tspu-lab -exp table1,fig4
//	tspu-lab -exp all -seed 7 -endpoints 4000 -ases 160
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tspusim"
	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		seed      = flag.Uint64("seed", 1, "lab seed")
		endpoints = flag.Int("endpoints", 2000, "RU endpoint population (paper: 4,005,138)")
		ases      = flag.Int("ases", 40, "endpoint AS count (paper: 4,986)")
		echo      = flag.Int("echo", 140, "echo server count (paper: 1,404)")
		tranco    = flag.Int("tranco", 2000, "Tranco list size (paper: 11,325)")
		registry  = flag.Int("registry", 2000, "registry sample size (paper: 10,000)")
		pcapPath  = flag.String("pcap", "", "write a Fig. 2-style SNI-I blocking capture to this .pcap file and exit")
		outDir    = flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	)
	flag.Parse()

	if *list {
		for _, e := range tspusim.Experiments() {
			fmt.Printf("%-10s %-45s %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	if *pcapPath != "" {
		if err := writeBlockingPCAP(*pcapPath, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "pcap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (open in Wireshark: the ServerHello comes back as RST/ACK)\n", *pcapPath)
		return
	}

	ids := tspusim.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	opts := tspusim.Options{
		Seed:      *seed,
		Endpoints: *endpoints,
		ASes:      *ases,
		EchoServers: func() int {
			if *echo > 0 {
				return *echo
			}
			return 140
		}(),
		TrancoN:   *tranco,
		RegistryN: *registry,
	}

	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		lab := tspusim.NewLab(opts)
		out, err := tspusim.Run(lab, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			failed = true
			continue
		}
		fmt.Println(out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "out:", err)
				failed = true
				continue
			}
			path := fmt.Sprintf("%s/%s.txt", *outDir, id)
			if err := os.WriteFile(path, []byte(out+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "out:", err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeBlockingPCAP captures an SNI-I blocking exchange on the vantage's
// device link and writes it as a real pcap file.
func writeBlockingPCAP(path string, seed uint64) error {
	lab := tspusim.NewLab(tspusim.Options{Seed: seed, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
	v := lab.Vantages[topo.ERTelecom]
	cap := netem.NewCapture("fig2")
	v.SymLink.Tap(cap)

	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) {
			c.Send([]byte("SERVERHELLO....."))
			c.Send([]byte("CERTIFICATE....."))
		},
	})
	conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
	ch := (&tlsx.ClientHelloSpec{ServerName: "twitter.com"}).Build()
	conn.OnEstablished = func() { conn.Send(ch) }
	lab.Sim.Run()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Include entries so both sides of the device's rewrite are visible.
	return cap.WritePCAP(f, true)
}
