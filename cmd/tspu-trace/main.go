// Command tspu-trace runs traceroutes from the Paris measurement machine to
// TSPU-positive endpoints and emits the Fig. 10/11 visualization as Graphviz
// DOT (TSPU links in red):
//
//	tspu-trace -seed 3 -endpoints 400 -dot out.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"tspusim"
	"tspusim/internal/measure"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "lab seed")
		endpoints = flag.Int("endpoints", 400, "RU endpoint population")
		ases      = flag.Int("ases", 20, "endpoint AS count")
		dotPath   = flag.String("dot", "", "write the traceroute graph as Graphviz DOT to this file")
		topoPath  = flag.String("topo", "", "write the lab topology (Fig. 1 style) as Graphviz DOT to this file")
	)
	flag.Parse()

	lab := tspusim.NewLab(tspusim.Options{
		Seed: *seed, Endpoints: *endpoints, ASes: *ases,
		TrancoN: 100, RegistryN: 100,
	})

	fmt.Println("scanning endpoint population for TSPU devices...")
	scan := measure.FragScan(lab, false, true)
	study := measure.RunTracerouteStudy(lab, scan)

	fmt.Print(study.Render(lab.PaperScale()))
	fmt.Print(scan.HopHist.String())
	fmt.Printf("within two hops of destination: %.1f%% (paper: ~69%%)\n",
		100*scan.HopHist.FracAtOrBelow(2))

	if *topoPath != "" {
		if err := os.WriteFile(*topoPath, []byte(lab.TopologyDOT(false)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing topology DOT:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (render with: neato -Tsvg %s)\n", *topoPath, *topoPath)
	}

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(study.DOT), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing DOT:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d traceroutes; render with: dot -Tsvg %s)\n",
			*dotPath, len(study.Traces), *dotPath)
	}
}
