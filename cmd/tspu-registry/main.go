// Command tspu-registry works with blocking-registry dumps in the z-i
// format the paper sampled (§6.1): generate a synthetic dump, query a
// domain the way the public CAPTCHA-gated registry allows, or list entries
// added since a date.
//
//	tspu-registry -gen dump.csv -n 10000
//	tspu-registry -load dump.csv -query twitter.com
//	tspu-registry -load dump.csv -since 2022-02-24
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tspusim/internal/registry"
	"tspusim/internal/sim"
	"tspusim/internal/workload"
)

func main() {
	var (
		gen   = flag.String("gen", "", "generate a synthetic dump to this file")
		n     = flag.Int("n", 10000, "entries to generate")
		seed  = flag.Uint64("seed", 1, "generation seed")
		load  = flag.String("load", "", "load a dump file")
		query = flag.String("query", "", "look up one domain (singular query)")
		since = flag.String("since", "", "list entries added on/after YYYY-MM-DD")
	)
	flag.Parse()

	switch {
	case *gen != "":
		rng := sim.NewRand(*seed)
		ds := workload.GenRegistry(rng, workload.RegistryOptions{N: *n})
		dump := registry.Marshal(registry.FromWorkload(rng, ds))
		if err := os.WriteFile(*gen, dump, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d entries)\n", *gen, *n)

	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		entries, err := registry.Parse(f)
		if err != nil {
			fatal(err)
		}
		switch {
		case *query != "":
			hits := registry.Lookup(entries, *query)
			if len(hits) == 0 {
				fmt.Printf("%s: not in registry\n", *query)
				return
			}
			for _, e := range hits {
				fmt.Printf("%s  added=%s  agency=%s  order=%s  ips=%v\n",
					e.Domain, e.Added.Format("2006-01-02"), e.Agency, e.Order, e.IPs)
			}
		case *since != "":
			t, err := time.Parse("2006-01-02", *since)
			if err != nil {
				fatal(err)
			}
			recent := registry.AddedSince(entries, t)
			fmt.Printf("%d of %d entries added since %s\n", len(recent), len(entries), *since)
			for i, e := range recent {
				if i >= 20 {
					fmt.Printf("... and %d more\n", len(recent)-20)
					break
				}
				fmt.Printf("%s  %s\n", e.Added.Format("2006-01-02"), e.Domain)
			}
		default:
			fmt.Printf("%d entries\n", len(entries))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tspu-registry:", err)
	os.Exit(1)
}
