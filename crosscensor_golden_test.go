package tspusim

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tspusim/internal/fleet"
)

var updateMatrix = flag.Bool("update", false, "rewrite testdata/crosscensor_matrix.golden from this run")

func crossCensorOpts() Options {
	return Options{Seed: 1, Endpoints: 20, ASes: 2, TrancoN: 50, RegistryN: 50}
}

// TestCrossCensorGoldenMatrix pins the full fingerprint matrix byte-for-byte.
// Any behavioral drift in any censor model — a changed trigger, a new
// reassembly path, a different injection shape — moves a cell and shows up
// as a readable diff against the committed golden. Regenerate deliberately
// with: go test -run TestCrossCensorGoldenMatrix -update .
func TestCrossCensorGoldenMatrix(t *testing.T) {
	lab := NewLab(crossCensorOpts())
	out, err := Run(lab, "crosscensor")
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "crosscensor_matrix.golden")
	if *updateMatrix {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(out))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if out != string(want) {
		t.Fatalf("fingerprint matrix drifted from %s — a censor model changed behavior.\n--- got ---\n%s\n--- want ---\n%s",
			golden, out, want)
	}
}

// TestCrossCensorWorkerIndependence: the matrix must be byte-identical at any
// -workers count and for any replica seed — it is a pure function of the
// model tables, so fleet scheduling and seed derivation must not leak in.
func TestCrossCensorWorkerIndependence(t *testing.T) {
	reports := []*fleet.Report{
		RunFleet(crossCensorOpts(), []string{"crosscensor"}, 3, 1, fleet.Config{Workers: 1}),
		RunFleet(crossCensorOpts(), []string{"crosscensor"}, 3, 1, fleet.Config{Workers: 4}),
		RunFleet(crossCensorOpts(), []string{"crosscensor"}, 3, 1, fleet.Config{Workers: 8}),
	}
	for _, r := range reports {
		if len(r.Failed()) != 0 {
			t.Fatalf("fleet run failed: %v", r.Failed()[0].Err)
		}
	}
	base := reports[0].RenderAggregate()
	for i, r := range reports[1:] {
		if got := r.RenderAggregate(); got != base {
			t.Fatalf("aggregate differs between worker counts (run %d):\n--- base ---\n%s\n--- got ---\n%s", i+1, base, got)
		}
	}
	// Every replica, regardless of its derived seed, renders the same matrix.
	first := reports[0].Results[0].Output
	if !strings.Contains(first, "distinct fingerprints: 6/6") {
		t.Fatalf("matrix output missing fingerprint summary:\n%s", first)
	}
	for _, r := range reports {
		for _, res := range r.Results {
			if res.Output != first {
				t.Fatalf("job %s rendered a different matrix — battery output depends on seed or schedule", res.Job.Label())
			}
		}
	}
}
