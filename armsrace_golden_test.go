package tspusim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tspusim/internal/armsrace"
	"tspusim/internal/evolve"
	"tspusim/internal/fleet"
	"tspusim/internal/measure"
)

// The arms-race corpus has two layers of goldens: the ledger+portability
// artifact (testdata/armsrace_ledger.golden) and one packet-level trace per
// pinned evasion (testdata/evasions/*.golden). Both regenerate together:
//
//	go test -run TestArmsRaceLedgerGolden -update .
//
// The ledger test also carries the acceptance assertions (pin counts, at
// least one defeat) so a corpus regeneration that quietly lost the arms-race
// dynamics fails even with -update.

const evasionsDir = "testdata/evasions"

// raceLedger memoizes the default-config race across the tests in this file.
var raceLedger *armsrace.Ledger

//tspuvet:impure the race runs on the fleet pool, which reads wall time for worker metrics; the asserted ledger bytes are seed-pure
func defaultRace(t *testing.T) *armsrace.Ledger {
	t.Helper()
	if raceLedger == nil {
		raceLedger = armsrace.Run(armsrace.DefaultConfig())
	}
	return raceLedger
}

// TestArmsRaceLedgerGolden pins the whole race — round ledger, pins, defeats,
// portability matrix — byte-for-byte, and (with -update) regenerates the
// golden-trace corpus from the current pins.
func TestArmsRaceLedgerGolden(t *testing.T) {
	led := defaultRace(t)

	// Acceptance floor, asserted before any golden comparison so it also
	// guards -update regenerations: the race must actually produce an arms
	// race, not a quiet convergence.
	var tspuPins int
	famPins := map[string]int{}
	var defeats int
	for _, fl := range led.Families {
		famPins[fl.Family] = len(fl.Pins)
		if fl.Family == "tspu" {
			tspuPins = len(fl.Pins)
		}
		defeats += len(fl.Defeats)
		if fl.NotApplicable {
			t.Errorf("family %s reported not applicable — its probed plane should be blocked", fl.Family)
		}
	}
	if tspuPins < 3 {
		t.Errorf("want >= 3 distinct pinned evasions against tspu, got %d", tspuPins)
	}
	for fam, n := range famPins {
		if n < 1 {
			t.Errorf("want >= 1 pinned evasion against %s, got %d", fam, n)
		}
	}
	if defeats < 1 {
		t.Errorf("want >= 1 pinned evasion defeated by a counter-evolved posture, got %d", defeats)
	}

	out := led.Render() + "\n" + armsrace.RunPortability(led).Render()
	golden := filepath.Join("testdata", "armsrace_ledger.golden")
	if *updateMatrix {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(out))
		regenerateEvasionCorpus(t, led)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if out != string(want) {
		t.Fatalf("arms-race ledger drifted from %s — a censor model, countermeasure, or the search changed.\n--- got ---\n%s\n--- want ---\n%s",
			golden, out, want)
	}
}

// regenerateEvasionCorpus rewrites testdata/evasions/ from the race's pins,
// removing any stale traces so the directory always mirrors the ledger.
func regenerateEvasionCorpus(t *testing.T, led *armsrace.Ledger) {
	t.Helper()
	if err := os.RemoveAll(evasionsDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(evasionsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range led.AllPins() {
		content, err := armsrace.Trace(armsrace.TraceHeader{
			Family:  p.Family,
			Round:   p.Round,
			Posture: p.Posture,
			Genome:  p.Genome.String(),
		})
		if err != nil {
			t.Fatalf("trace %s/%s: %v", p.Family, p.Genome, err)
		}
		name := filepath.Join(evasionsDir, armsrace.TraceName(p))
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("rewrote %s (%d traces)", evasionsDir, len(led.AllPins()))
}

// TestEvasionCorpusReplays re-runs every golden trace from nothing but its
// own header and byte-compares verdict and packet log. The corpus is the
// conformance suite for the evasion claims: a model change that breaks (or
// un-breaks) a pinned strategy produces a packet-level diff here.
func TestEvasionCorpusReplays(t *testing.T) {
	entries, err := os.ReadDir(evasionsDir)
	if err != nil {
		t.Fatalf("missing evasion corpus (regenerate with go test -run TestArmsRaceLedgerGolden -update .): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("evasion corpus is empty")
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".golden") {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join(evasionsDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			h, err := armsrace.ParseTraceHeader(string(want))
			if err != nil {
				t.Fatal(err)
			}
			// The header's strategy string must be a valid corpus form.
			if _, err := evolve.Decode(h.Genome); err != nil {
				t.Fatalf("trace header carries undecodable strategy %q: %v", h.Genome, err)
			}
			got, err := armsrace.Trace(h)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Fatalf("replay of %s drifted:\n--- got ---\n%s\n--- want ---\n%s", e.Name(), got, want)
			}
		})
	}
}

// TestArmsRacePortabilityControls guards the control column: the portability
// matrix must never report a strategy as evading a censor that does not block
// the probed plane in the first place, and the arms race's stimulus must stay
// the cross-censor battery's shared blocked domain so the two artifacts
// describe the same tables.
func TestArmsRacePortabilityControls(t *testing.T) {
	if armsrace.BlockedDomain != measure.CrossBlockedDomain {
		t.Fatalf("arms-race stimulus %q diverged from cross-censor stimulus %q",
			armsrace.BlockedDomain, measure.CrossBlockedDomain)
	}
	pm := armsrace.RunPortability(defaultRace(t))
	if len(pm.Strategies) == 0 {
		t.Fatal("portability matrix has no strategies")
	}
	for si, row := range pm.Strategies {
		for fi, fam := range pm.Families {
			cell := pm.Cells[si][fi]
			if !pm.BaselineBlocked[fam][row.Kind] && !strings.HasPrefix(cell, "n/a") {
				t.Errorf("%s vs %s: baseline does not block %s but cell is %q, not a control cell",
					row.Genome, fam, row.Kind, cell)
			}
			if pm.BaselineBlocked[fam][row.Kind] && strings.HasPrefix(cell, "n/a") {
				t.Errorf("%s vs %s: baseline blocks %s but cell is a control cell", row.Genome, fam, row.Kind)
			}
		}
	}
	// The fingerprint matrix's pinned facts imply concrete control cells:
	// the TSPU does not block the HTTP plane, airtel does not block TLS.
	if got := pm.BaselineBlocked["tspu"][armsrace.ProbeHTTP]; got {
		t.Error("tspu unexpectedly blocks the http-host probe at baseline")
	}
	if got := pm.BaselineBlocked["in-airtel"][armsrace.ProbeTLS]; got {
		t.Error("in-airtel unexpectedly blocks the tls-sni probe at baseline")
	}
}

// TestArmsRaceWorkerIndependence: the whole race — search, shrink, defeats,
// counter-moves — must be byte-identical at any fleet worker count, and the
// registered experiment must render identically across replica seeds.
//
//tspuvet:impure the test exists to prove the wall-clock-adjacent fleet path is seed-pure where it counts: the ledger bytes it compares
func TestArmsRaceWorkerIndependence(t *testing.T) {
	base := defaultRace(t).Render()
	for _, w := range []int{4, 8} {
		cfg := armsrace.DefaultConfig()
		cfg.Workers = w
		if got := armsrace.Run(cfg).Render(); got != base {
			t.Fatalf("ledger differs at workers=%d", w)
		}
	}

	// Replica independence through the experiment surface: the race ignores
	// the lab seed by design, so every replica renders the same artifact.
	rep := RunFleet(crossCensorOpts(), []string{"armsrace"}, 2, 1, fleet.Config{Workers: 2})
	if len(rep.Failed()) != 0 {
		t.Fatalf("fleet run failed: %v", rep.Failed()[0].Err)
	}
	first := rep.Results[0].Output
	if !strings.Contains(first, "pins:") {
		t.Fatalf("experiment output missing pin summary:\n%s", first)
	}
	for _, res := range rep.Results {
		if res.Output != first {
			t.Fatalf("job %s rendered a different ledger — the race leaked lab seed or schedule", res.Job.Label())
		}
	}
}
