package tspusim

import (
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	ids := IDs()
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table7", "table8",
		"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig12", "fig13", "fig14", "sni3", "localize", "usval", "circum",
		"observatory", "timeline", "exhaust", "exhaustscale", "evolve", "residual", "webconn", "propagation", "asymmetry", "devices", "crosscensor",
		"armsrace",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("missing experiment %q", w)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(ids), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	lab := NewLab(Options{Seed: 1, Endpoints: 20, ASes: 2, TrancoN: 50, RegistryN: 50})
	if _, err := Run(lab, "nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Run's output must be a pure function of the lab seed. This is the
// regression test for the wall-clock stamp tspu-vet was built to catch: the
// "[%.2fs]" timing that used to live in the returned string made every run
// unique.
func TestRunOutputByteIdentical(t *testing.T) {
	opts := Options{Seed: 3, Endpoints: 60, ASes: 6, EchoServers: 20, TrancoN: 80, RegistryN: 80}
	for _, id := range []string{"table1", "fig12"} {
		a, err := Run(NewLab(opts), id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(NewLab(opts), id)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s output differs between two runs of the same seed:\n%s\nvs\n%s", id, a, b)
		}
	}
}

func TestRunSmokeEveryExperiment(t *testing.T) {
	// Every experiment must run to completion on a small lab and produce
	// non-trivial output. Fresh lab per experiment keeps them independent.
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			opts := Options{Seed: 2, Endpoints: 120, ASes: 10, EchoServers: 40, TrancoN: 120, RegistryN: 120}
			lab := NewLab(opts)
			out, err := Run(lab, e.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) < 80 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if !strings.Contains(out, e.ID) {
				t.Fatal("output missing header")
			}
		})
	}
}
