// Domain survey demo (§6): test a registry sample and a Tranco-like top
// list against both the TSPU (SNI blocking) and each ISP's DNS blockpage
// resolver, then categorize the blocked registry domains with the LDA
// pipeline — the Fig. 6 / Fig. 7 workflow end to end.
package main

import (
	"fmt"

	"tspusim"
	"tspusim/internal/measure"
)

func main() {
	lab := tspusim.NewLab(tspusim.Options{Seed: 6, Endpoints: 50, ASes: 5, TrancoN: 600, RegistryN: 600})

	reg := measure.DomainSurvey(lab, "registry-sample", lab.Registry)
	fmt.Print(reg.Render())
	fmt.Println()

	tranco := measure.DomainSurvey(lab, "tranco+CLBL", lab.Tranco)
	fmt.Print(tranco.Render())
	fmt.Println()

	fmt.Println("categorizing the registry sample with LDA (this is the slow part)...")
	fmt.Print(measure.Categories(lab, reg, 12, 40).Render())

	tspu, perISP, only := reg.Counts()
	fmt.Printf("\nthe decentralized-to-centralized shift in one line: ISP resolvers block %v,\n"+
		"the TSPU blocks %d — %d of them invisible to every ISP blocklist.\n", perISP, tspu, only)
}
