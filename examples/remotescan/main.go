// Remote scan demo: detect TSPU devices from outside Russia without sending
// any censorship trigger, using the 45-fragment queue limit as a fingerprint
// (§7.2), then localize each device with TTL-limited fragments and compare
// against the topology's ground truth.
package main

import (
	"fmt"

	"tspusim"
	"tspusim/internal/measure"
)

func main() {
	lab := tspusim.NewLab(tspusim.Options{Seed: 5, Endpoints: 300, ASes: 15, TrancoN: 100, RegistryN: 100})

	fmt.Printf("population: %d endpoints in %d ASes; scanning from the Paris machine\n\n",
		len(lab.Endpoints), len(lab.ASes))

	scan := measure.FragScan(lab, false, true)
	fmt.Print(scan.Render(lab.PaperScale()))
	fmt.Println()
	fmt.Print(scan.HopHist.String())

	// Compare detection against ground truth — something only a simulation
	// can do, and the reason the substitution is trustworthy.
	var tp, fp, fn, upstreamMissed int
	for _, v := range scan.Verdicts {
		switch {
		case v.TSPULike && v.Endpoint.BehindTSPU:
			tp++
		case v.TSPULike && !v.Endpoint.BehindTSPU:
			fp++
		case !v.TSPULike && v.Endpoint.BehindTSPU:
			fn++
		}
		if v.Endpoint.BehindUpstreamOnly {
			upstreamMissed++
		}
	}
	fmt.Printf("\nground truth: %d true positives, %d false positives, %d false negatives\n", tp, fp, fn)
	fmt.Printf("upstream-only devices invisible to this scan (the paper's stated lower-bound): %d endpoints\n", upstreamMissed)
}
