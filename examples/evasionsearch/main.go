// Evasion search demo: run the Geneva-style genetic search against the TSPU
// model and watch it rediscover the paper's §8 strategies — segmentation,
// fragmentation, padding and record-prepending — while learning that
// TTL-limited junk insertion no longer works.
package main

import (
	"fmt"

	"tspusim"
	"tspusim/internal/evolve"
)

func main() {
	lab := tspusim.NewLab(tspusim.Options{Seed: 13, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})

	results := evolve.Search(lab, lab.US1, evolve.SearchOptions{Population: 16, Generations: 8})
	fmt.Print(evolve.Render(results))

	// Show the per-gene verdicts of the simplest winner.
	for _, d := range results {
		if d.Fitness == 3 && d.Genome.Complexity() == 1 {
			fmt.Printf("\nsimplest full evasion: %s\n", d.Genome)
			fmt.Println("matches a §8 strategy the paper documented by hand —")
			fmt.Println("the search found it with no knowledge of the device internals.")
			break
		}
	}

	// And the negative result: junk insertion alone never wins.
	junkFailures := 0
	for _, d := range results {
		g := d.Genome
		if g.JunkTTL > 0 && g.SegmentSize == 0 && g.FragmentPayload == 0 &&
			g.PadBeforeSNI == 0 && !g.PrependRecord && d.Fitness == 0 {
			junkFailures++
		}
	}
	if junkFailures > 0 {
		fmt.Printf("\njunk-only candidates evaluated and defeated: %d (the paper: \"mitigated\")\n", junkFailures)
	}
}
