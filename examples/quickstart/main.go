// Quickstart: build a lab, try to fetch a censored site from a Russian
// vantage point, and watch the TSPU rewrite the response into RST/ACKs —
// then do the same with an innocuous SNI and see it work.
package main

import (
	"fmt"

	"tspusim"
	"tspusim/internal/hostnet"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

func main() {
	lab := tspusim.NewLab(tspusim.Options{Seed: 1, Endpoints: 50, ASes: 5, TrancoN: 100, RegistryN: 100})

	// A TLS server on the US measurement machine.
	lab.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, data []byte) {
			c.Send([]byte("ServerHello + Certificate ..."))
		},
	})

	fetch := func(domain string) {
		v := lab.Vantages[topo.ERTelecom]
		conn := v.Stack.Dial(lab.US1.Addr(), 443, hostnet.DialOptions{})
		ch := (&tlsx.ClientHelloSpec{ServerName: domain}).Build()
		conn.OnEstablished = func() { conn.Send(ch) }
		lab.Sim.Run()

		fmt.Printf("SNI=%-16s -> ", domain)
		switch {
		case conn.ResetSeen:
			fmt.Println("connection reset by the TSPU (SNI-I: payload stripped, flags -> RST/ACK)")
		case len(conn.Received) > 0:
			fmt.Printf("OK, got %q\n", conn.Received)
		default:
			fmt.Println("silence")
		}
		conn.Close()
	}

	fmt.Println("== quickstart: a Russian residential client fetching TLS sites ==")
	fetch("twitter.com")   // SNI-I (+ SNI-IV backup)
	fetch("meduza.io")     // SNI-I
	fetch("example.org")   // control: not censored
	fetch("wikipedia.org") // control: not censored

	// Central policy update: Roskomnadzor adds a domain; every device in
	// every ISP enforces it instantly — the paper's "centralized control
	// over decentralized networks".
	fmt.Println("\n== pushing a policy update to all TSPU devices ==")
	lab.Controller.Update(func(p *tspu.Policy) { p.SNI1Domains.Add("example.org") })
	fetch("example.org")
}
