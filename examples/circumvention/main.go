// Circumvention demo: run the §8 evasion strategies against the TSPU's
// blocking behaviors, first across a single symmetric device (ER-Telecom to
// the US), then through a path with an upstream-only device (OBIT to Paris)
// where server-side tricks partially fail.
package main

import (
	"fmt"

	"tspusim"
	"tspusim/internal/circumvent"
	"tspusim/internal/topo"
)

func main() {
	lab := tspusim.NewLab(tspusim.Options{Seed: 8, Endpoints: 50, ASes: 5, TrancoN: 100, RegistryN: 100})

	fmt.Print(circumvent.Render(
		"Strategies vs one symmetric TSPU (ER-Telecom -> US measurement machine)",
		circumvent.Matrix(lab, topo.ERTelecom, lab.US1)))

	fmt.Println()
	fmt.Print(circumvent.Render(
		"Strategies through an upstream-only TSPU (OBIT -> Paris): note SNI-II",
		circumvent.Matrix(lab, topo.OBIT, lab.Paris)))

	fmt.Println("\nNotes:")
	for _, s := range circumvent.Strategies() {
		fmt.Printf("  %-24s %s\n", s.Name, s.Notes)
	}
}
