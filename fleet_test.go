package tspusim

import (
	"strings"
	"testing"

	"tspusim/internal/fleet"
)

func fleetTestOpts() Options {
	return Options{Seed: 5, Endpoints: 120, ASes: 8, EchoServers: 30, TrancoN: 120, RegistryN: 120}
}

// TestFleetDeterministicAcrossWorkers is the golden determinism check: real
// experiments fanned across 1 worker and 8 workers must render byte-identical
// aggregate reports for the same root seed.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"table2", "table7", "fig12", "usval"}
	r1 := RunFleet(fleetTestOpts(), ids, 3, 1, fleet.Config{Workers: 1})
	r8 := RunFleet(fleetTestOpts(), ids, 3, 1, fleet.Config{Workers: 8})
	if len(r1.Failed()) != 0 {
		t.Fatalf("sequential fleet had failures: %v", r1.Failed()[0].Err)
	}
	a, b := r1.RenderAggregate(), r8.RenderAggregate()
	if a != b {
		t.Fatalf("aggregate report differs between -workers 1 and -workers 8:\n--- w1 ---\n%s\n--- w8 ---\n%s", a, b)
	}
	if !strings.Contains(a, "12 ok, 0 failed") {
		t.Fatalf("unexpected summary:\n%s", a)
	}
}

// TestFleetUnknownExperimentFails: a job naming a missing experiment is
// reported as failed while the valid jobs complete.
func TestFleetUnknownExperimentFails(t *testing.T) {
	rep := RunFleet(fleetTestOpts(), []string{"table7", "nope"}, 2, 1, fleet.Config{Workers: 4})
	failed := rep.Failed()
	if len(failed) != 2 {
		t.Fatalf("want both nope jobs failed, got %d failures", len(failed))
	}
	for _, res := range failed {
		if res.Job.Exp != "nope" {
			t.Fatalf("valid job failed: %s: %v", res.Job.Label(), res.Err)
		}
	}
	agg := rep.RenderAggregate()
	if !strings.Contains(agg, "2 ok, 2 failed: nope/seed=0/shard=0, nope/seed=1/shard=0") {
		t.Fatalf("aggregate summary wrong:\n%s", agg)
	}
}

// TestFleetPanicIsolationWithRealJobs injects a panic into one job of a real
// experiment sweep and checks the fleet survives with the rest intact.
//
//tspuvet:impure the fleet runner reads wall time for worker metrics; the test asserts failure routing, not timing
func TestFleetPanicIsolationWithRealJobs(t *testing.T) {
	base := fleetTestOpts()
	jobs := fleet.Plan(base.Seed, []string{"table7", "fig12"}, 2, 1)
	inner := JobRunner(base)
	run := func(job fleet.Job) (string, []fleet.Stat, error) {
		if job.Exp == "fig12" && job.SeedIndex == 1 {
			panic("injected shard failure")
		}
		return inner(job)
	}
	rep := fleet.NewRunner(fleet.Config{Workers: 4}).Run(jobs, run)
	failed := rep.Failed()
	if len(failed) != 1 || failed[0].Job.Label() != "fig12/seed=1/shard=0" {
		t.Fatalf("want exactly the injected job failed, got %+v", failed)
	}
	if !strings.Contains(rep.RenderAggregate(), "3 ok, 1 failed") {
		t.Fatalf("aggregate summary wrong:\n%s", rep.RenderAggregate())
	}
}

// TestFleetShardsSplitPopulation: sharding divides the endpoint population
// and still renders deterministically.
func TestFleetShardsSplitPopulation(t *testing.T) {
	base := fleetTestOpts()
	a := RunFleet(base, []string{"fig12"}, 1, 2, fleet.Config{Workers: 1})
	b := RunFleet(base, []string{"fig12"}, 1, 2, fleet.Config{Workers: 2})
	if len(a.Failed()) != 0 {
		t.Fatalf("sharded run failed: %v", a.Failed()[0].Err)
	}
	if a.RenderAggregate() != b.RenderAggregate() {
		t.Fatal("sharded aggregate differs across worker counts")
	}
}

// TestExperimentStatsHook: experiments with a Stats hook (table1) emit
// ordered labelled stats matching the table layout.
func TestExperimentStatsHook(t *testing.T) {
	e, ok := Find("table1")
	if !ok || e.Stats == nil {
		t.Fatal("table1 must expose a Stats hook")
	}
	lab := NewLab(Options{Seed: 2, Endpoints: 60, ASes: 4, EchoServers: 20, TrancoN: 60, RegistryN: 60})
	out, stats := e.Stats(lab)
	if len(stats) != 15 {
		t.Fatalf("table1 stats has %d cells, want 15 (3 vantages x 5 types)", len(stats))
	}
	if stats[0].Key != "rostelecom/SNI-I fail%" {
		t.Fatalf("first stat key %q", stats[0].Key)
	}
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("Stats output missing artifact:\n%s", out)
	}
}
