// Package tspusim is a laboratory reproduction of "TSPU: Russia's
// Decentralized Censorship System" (Xue et al., IMC 2022). It bundles:
//
//   - a reference model of the TSPU middlebox exactly as the paper measured
//     it — SNI/QUIC/IP triggers, six blocking behaviors, the measured
//     connection-tracking timeouts, and the fragment-queue fingerprint;
//   - a deterministic network simulator populated with the paper's
//     measurement environment (three vantage ISPs, US/Paris machines, a
//     blocked Tor node, and a scaled RU endpoint population);
//   - the paper's measurement techniques, packaged as named experiments
//     that regenerate every table and figure of the evaluation.
//
// Quick start:
//
//	lab := tspusim.NewLab(tspusim.Options{Seed: 1})
//	out, err := tspusim.Run(lab, "fig4")
//
// Use Experiments to enumerate everything that can be regenerated; each
// experiment is independent and deterministic given the lab seed.
package tspusim

import (
	"fmt"
	"sort"
	"time"

	"tspusim/internal/armsrace"
	"tspusim/internal/circumvent"
	"tspusim/internal/evolve"
	"tspusim/internal/fleet"
	"tspusim/internal/ispdpi"
	"tspusim/internal/measure"
	"tspusim/internal/report"
	"tspusim/internal/topo"
)

// Options configures a lab; it is the topology builder's option set.
type Options = topo.Options

// Lab is a fully-built measurement environment.
type Lab = topo.Lab

// NewLab builds a deterministic lab from options (zero values give a
// laptop-scale environment, ~1/1000 of the paper's populations).
func NewLab(opts Options) *Lab { return topo.Build(opts) }

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	// Paper cites where the artifact appears.
	Paper string
	// Run executes against a fresh or reused lab and returns the rendered
	// artifact.
	Run func(lab *Lab) string
	// Stats, when non-nil, runs the experiment once and additionally
	// returns ordered summary statistics for multi-seed fleet aggregation.
	// Experiments without one are aggregated from numbers extracted out of
	// their rendered text (fleet.ExtractStats).
	Stats func(lab *Lab) (string, []fleet.Stat)
}

// Experiments returns the full per-experiment index of DESIGN.md, keyed and
// ordered by ID.
//
//tspuvet:impure the armsrace experiment's inner fleet reads wall time for worker metrics; every rendered artifact is seed-pure
func Experiments() []Experiment {
	exps := []Experiment{
		{
			ID: "table1", Title: "TSPU trigger failure rates", Paper: "Table 1",
			Run: func(lab *Lab) string {
				return measure.Reliability(lab, 2000).Render()
			},
			Stats: func(lab *Lab) (string, []fleet.Stat) {
				res := measure.Reliability(lab, 2000)
				var stats []fleet.Stat
				for _, v := range measure.Vantages {
					for i, typ := range measure.ReliabilityTypes {
						stats = append(stats, fleet.Stat{
							Key:   v + "/" + measure.ReliabilityCols[i] + " fail%",
							Value: 100 * res.Failures[v][typ],
						})
					}
				}
				return res.Render(), stats
			},
		},
		{
			ID: "table2", Title: "Connection-state timeout measurements", Paper: "Table 2, Fig. 5",
			Run: func(lab *Lab) string {
				return measure.RenderTable2(measure.Table2(lab))
			},
		},
		{
			ID: "table3", Title: "Blocking types for named domains", Paper: "Table 3",
			Run: func(lab *Lab) string {
				return measure.Table3(lab).Render()
			},
		},
		{
			ID: "table4", Title: "Echo server measurements", Paper: "Table 4, Fig. 8 right",
			Run: func(lab *Lab) string {
				return measure.EchoMeasure(lab, 20).Render()
			},
		},
		{
			ID: "table5", Title: "IP-block correlations (echo and fragmentation)", Paper: "Table 5",
			Run: func(lab *Lab) string {
				echo := measure.EchoMeasure(lab, 20)
				scan := measure.FragScan(lab, true, false)
				return echo.Table5Echo().String() + "\n" + scan.Table5Frag().String()
			},
		},
		{
			ID: "table7", Title: "Documented conntrack timeouts", Paper: "Table 7",
			Run: func(lab *Lab) string {
				t := report.NewTable("Table 7: documented connection-tracking timeouts", "System", "State", "Timeout")
				for _, row := range ispdpi.Table7() {
					t.AddRow(row.System, row.State, row.Timeout.String())
				}
				return t.String()
			},
		},
		{
			ID: "table8", Title: "Sequence timeout estimates", Paper: "Table 8",
			Run: func(lab *Lab) string {
				return measure.RenderTable8(measure.Table8(lab))
			},
		},
		{
			ID: "fig2", Title: "Blocking behavior packet traces", Paper: "Fig. 2",
			Run: measure.BehaviorTraces,
		},
		{
			ID: "fig3", Title: "Fragment buffering and TTL rewrite", Paper: "Fig. 3",
			Run: measure.FragBehaviorTrace,
		},
		{
			ID: "fig4", Title: "Triggering-sequence exploration", Paper: "Fig. 4",
			Run: func(lab *Lab) string {
				return measure.ExploreSequences(lab, topo.ERTelecom, 3).Render()
			},
		},
		{
			ID: "fig6", Title: "ISP vs TSPU blocked-domain sets", Paper: "Fig. 6",
			Run: func(lab *Lab) string {
				reg := measure.DomainSurvey(lab, "registry-sample", lab.Registry)
				tr := measure.DomainSurvey(lab, "tranco+CLBL", lab.Tranco)
				return reg.Render() + reg.RenderVenn() + "\n" + tr.Render() + tr.RenderVenn()
			},
		},
		{
			ID: "fig7", Title: "Blocked-domain categories (LDA)", Paper: "Fig. 7",
			Run: func(lab *Lab) string {
				reg := measure.DomainSurvey(lab, "registry-sample", lab.Registry)
				return measure.Categories(lab, reg, 12, 40).Render()
			},
		},
		{
			ID: "fig8", Title: "Partial-visibility (upstream-only) devices", Paper: "Fig. 8 left",
			Run: func(lab *Lab) string {
				out := ""
				for _, v := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
					out += measure.PartialVisibility(lab, v, 12).Render()
				}
				return out
			},
		},
		{
			ID: "fig9", Title: "Fragment-fingerprint scan by port", Paper: "Fig. 9",
			Run: func(lab *Lab) string {
				scan := measure.FragScan(lab, false, false)
				// "Large" scales the paper's 5,000-of-4M threshold: ~2x the
				// mean AS size (the weight distribution tops out near 2.4x).
				threshold := 2 * len(lab.Endpoints) / len(lab.ASes)
				return scan.Render(lab.PaperScale()) + scan.LargeAS(threshold).Render()
			},
		},
		{
			ID: "fig10", Title: "Traceroutes with TSPU links", Paper: "Fig. 10, Fig. 11",
			Run: func(lab *Lab) string {
				scan := measure.FragScan(lab, false, true)
				return measure.RunTracerouteStudy(lab, scan).Render(lab.PaperScale())
			},
		},
		{
			ID: "fig12", Title: "TSPU hop-distance histogram", Paper: "Fig. 12",
			Run: func(lab *Lab) string {
				scan := measure.FragScan(lab, false, true)
				return scan.HopHist.String() +
					fmt.Sprintf("within two hops: %.1f%% (paper: ~69%%)\n", 100*scan.HopHist.FracAtOrBelow(2))
			},
		},
		{
			ID: "fig13", Title: "ClientHello inspection map", Paper: "Fig. 13",
			Run: func(lab *Lab) string {
				return measure.RenderCHFuzz(measure.CHFuzz(lab))
			},
		},
		{
			ID: "fig14", Title: "QUIC fingerprint boundaries", Paper: "Fig. 14",
			Run: func(lab *Lab) string {
				return measure.QUICFuzz(lab).Render()
			},
		},
		{
			ID: "sni3", Title: "SNI-III throttling goodput", Paper: "§5.2",
			Run: func(lab *Lab) string {
				return measure.ThrottleMeasure(lab).Render()
			},
		},
		{
			ID: "localize", Title: "TTL-limited device localization", Paper: "§7.1",
			Run: func(lab *Lab) string {
				out := ""
				for _, v := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
					out += measure.TTLLocalize(lab, v, 10).Render()
				}
				return out
			},
		},
		{
			ID: "usval", Title: "US fragment-limit false positives", Paper: "§7.2",
			Run: func(lab *Lab) string {
				eps := lab.BuildUSPopulation(1000)
				res := measure.ValidateUS(lab, eps)
				return fmt.Sprintf("US hosts with TSPU-like fragment limit: %d/%d (%.3f%%; paper: 0.708%%)\n",
					res.TSPULike, res.Total, 100*float64(res.TSPULike)/float64(res.Total))
			},
		},
		{
			ID: "observatory", Title: "OONI vs Censored Planet visibility", Paper: "§5.3.2",
			Run: func(lab *Lab) string {
				return measure.ObservatoryComparison(lab, 15).Render()
			},
		},
		{
			ID: "timeline", Title: "Policy timeline replay 2021-2022", Paper: "§2, §5.2",
			Run: func(lab *Lab) string {
				return measure.RenderTimeline(measure.TimelineReplay(lab))
			},
		},
		{
			ID: "exhaust", Title: "Conntrack state-exhaustion evasion", Paper: "§8 (provisioning)",
			Run: func(lab *Lab) string {
				return measure.StateExhaustion(lab).Render()
			},
		},
		{
			ID: "exhaustscale", Title: "State exhaustion at scale (batch-engine flood)", Paper: "§5.3.3, §8 (provisioning)",
			Run: func(lab *Lab) string {
				// Offered load scales with the lab's population knob: the
				// tspu-lab default (2000 endpoints) floods at 20k flows/s for
				// a ~1.2M-flow concurrency plateau; -endpoints scales it up
				// to the paper's millions. Bounds bracket the plateau so the
				// table shows both survival and shedding.
				cfg := measure.DefaultExhaustScale()
				cfg.Seed = lab.Opts.Seed
				cfg.Rate = 10 * len(lab.Endpoints)
				if cfg.Rate < 500 {
					cfg.Rate = 500
				}
				plateau := cfg.Rate * 60
				cfg.Bounds = []int{0, 2 * plateau, plateau / 8, plateau / 128}
				return measure.StateExhaustionAtScale(cfg).Render()
			},
		},
		{
			ID: "devices", Title: "TSPU fleet counters under a mixed workload", Paper: "(observability)",
			Run: func(lab *Lab) string {
				return measure.Devices(lab).Render()
			},
		},
		{
			ID: "asymmetry", Title: "Bidirectional routing asymmetry", Paper: "§7.1.1",
			Run: func(lab *Lab) string {
				return measure.RoutingAsymmetry(lab).Render()
			},
		},
		{
			ID: "propagation", Title: "Central policy push: nationwide onset uniformity", Paper: "§2, §5.1",
			Run: func(lab *Lab) string {
				return measure.PolicyPropagation(lab, 8*time.Second).Render()
			},
		},
		{
			ID: "webconn", Title: "OONI-style web connectivity (DNS+TLS+HTTP layering)", Paper: "§6.2",
			Run: func(lab *Lab) string {
				n := len(lab.Registry)
				if n > 150 {
					n = 150
				}
				out := ""
				for _, v := range []string{topo.Rostelecom, topo.ERTelecom, topo.OBIT} {
					out += measure.WebConnectivity(lab, v, lab.Registry[:n]).Render() + "\n"
				}
				return out
			},
		},
		{
			ID: "residual", Title: "Residual censorship / fresh-port methodology", Paper: "§3",
			Run: func(lab *Lab) string {
				return measure.ResidualCensorship(lab).Render()
			},
		},
		{
			ID: "crosscensor", Title: "Cross-censor fingerprint matrix (TSPU vs TM vs IN vs ISP DPI)", Paper: "§3, §5-§7 vs arXiv:2304.04835, arXiv:1808.01708",
			Run: func(lab *Lab) string {
				// Runs on its own per-cell testbeds; the Lab contributes only
				// the seed, so the matrix is identical at any -endpoints or
				// -workers setting.
				return measure.CrossCensor(lab.Opts.Seed).Render()
			},
		},
		{
			ID: "armsrace", Title: "Arms race: evasion search vs. counter-evolving censors", Paper: "§8 / [38] + arXiv:2304.04835, arXiv:1808.01708",
			Run: func(lab *Lab) string {
				// Like crosscensor, the race is a conformance artifact: every
				// trial runs on its own testbed derived from the fixed corpus
				// seed, so the ledger is byte-identical for every lab seed,
				// replica, and worker count.
				led := armsrace.Run(armsrace.DefaultConfig())
				return led.Render() + "\n" + armsrace.RunPortability(led).Render()
			},
		},
		{
			ID: "evolve", Title: "Geneva-style automated evasion search", Paper: "§8 / [38]",
			Run: func(lab *Lab) string {
				return evolve.Render(evolve.Search(lab, lab.US1, evolve.SearchOptions{}))
			},
		},
		{
			ID: "circum", Title: "Circumvention strategy matrix", Paper: "§8",
			Run: func(lab *Lab) string {
				sym := circumvent.Matrix(lab, topo.ERTelecom, lab.US1)
				out := circumvent.Render("Circumvention vs one symmetric device (ER-Telecom -> US)", sym)
				upstream := circumvent.Matrix(lab, topo.OBIT, lab.Paris)
				out += "\n" + circumvent.Render("Circumvention through an upstream-only device (OBIT -> Paris)", upstream)
				return out
			},
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Header renders the experiment's deterministic banner line (no timing).
func (e Experiment) Header() string {
	return fmt.Sprintf("### %s — %s (%s)", e.ID, e.Title, e.Paper)
}

// Run executes the experiment with the given ID on lab. The returned string
// is a pure function of the lab seed — byte-identical across runs — so
// callers wanting wall-clock timing must measure around this call and keep
// it out of the experiment artifact (cmd/tspu-lab prints it to stderr).
func Run(lab *Lab, id string) (string, error) {
	e, ok := Find(id)
	if !ok {
		return "", fmt.Errorf("tspusim: unknown experiment %q (use IDs from Experiments)", id)
	}
	return e.Header() + "\n" + e.Run(lab), nil
}

// IDs returns every experiment ID.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	return out
}
